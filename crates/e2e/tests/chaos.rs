//! Chaos tests for the fault-tolerant compile service (PR 6 + PR 8):
//! injected synthesis panics must release every coalesced waiter with a
//! typed, retryable error (never a deadlock), transient failures must be
//! retried to success, the admission controller must shed typed overload,
//! and deadlines are enforced while queued, while coalesced *and* against
//! the in-flight synthesis itself — which is cooperatively cancelled,
//! freeing its slot and broadcasting a typed error. Shutdown drains the
//! queue and cancels in-flight work the same way.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use hexcute_arch::GpuArch;
use hexcute_core::{
    CompileError, CompilerOptions, FaultInjector, FaultKind, FaultSpec, KernelCacheConfig,
};
use hexcute_e2e::{CompileService, ServedFrom, ServiceConfig};
use hexcute_ir::Program;
use hexcute_kernels::gemm::{fp16_gemm, GemmConfig, GemmShape};

fn unique_temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "hexcute-chaos-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A kernel that takes long enough to synthesize that other requests can
/// observably queue behind or coalesce onto it.
fn slow_program() -> Program {
    fp16_gemm(GemmShape::new(1024, 1024, 1024), GemmConfig::default()).unwrap()
}

fn small_program(k: usize) -> Program {
    fp16_gemm(GemmShape::new(128, 128, k), GemmConfig::default()).unwrap()
}

fn service_with(config: ServiceConfig, dir: Option<&std::path::Path>) -> CompileService {
    let cache_config = KernelCacheConfig {
        dir: dir.map(|d| d.to_path_buf()),
        ..KernelCacheConfig::default()
    };
    CompileService::with_service_config(
        GpuArch::h100(),
        CompilerOptions::new(),
        cache_config,
        config,
    )
}

/// Satellite (a): when the claimant of an in-flight synthesis panics, every
/// coalesced waiter must be woken with a typed, retryable error — no waiter
/// may hang, and the service must keep working once the fault clears.
#[test]
fn panicking_synthesis_releases_all_coalesced_waiters() {
    let injector = FaultInjector::new(FaultSpec::default().with_rate(FaultKind::SynthPanic, 1.0));
    let config = ServiceConfig {
        max_retries: 0, // surface the panic instead of retrying it away
        faults: Some(injector.clone()),
        ..ServiceConfig::default()
    };
    let service = Arc::new(service_with(config, None));
    let program = slow_program();

    let n = 6;
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let service = Arc::clone(&service);
            let program = program.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                service.compile(&program)
            })
        })
        .collect();

    // Every thread — claimants and coalesced waiters alike — must return
    // (joining proves no waiter deadlocked) and must see the panic as a
    // typed, transient error.
    for handle in handles {
        match handle.join().expect("client thread must not die") {
            Err(CompileError::Panicked(msg)) => {
                assert!(msg.contains("injected"), "unexpected payload: {msg}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }
    let stats = service.stats();
    assert!(stats.synth_panics >= 1, "{stats}");
    assert!(
        CompileError::Panicked(String::new()).is_transient(),
        "panics must be classified retryable"
    );

    // Heal the fault: the same program now compiles fine.
    injector.set_enabled(false);
    let response = service.compile(&program).unwrap();
    assert_eq!(response.served_from, ServedFrom::Synthesized);
    assert_eq!(service.stats().requests, n as u64 + 1);
}

/// A transient panic on the first attempt is retried with backoff and the
/// request still succeeds.
#[test]
fn transient_panics_are_retried_to_success() {
    let spec = FaultSpec::default().with_rate(FaultKind::SynthPanic, 0.5);
    // Find a replay seed whose synth-panic draw stream starts
    // (fire, don't fire): attempt one panics, the retry succeeds.
    let seed = (0..1000)
        .find(|&s| {
            let probe = FaultInjector::new(spec.clone().with_seed(s));
            probe.should(FaultKind::SynthPanic) && !probe.should(FaultKind::SynthPanic)
        })
        .expect("some seed must start with (fire, no-fire)");
    let config = ServiceConfig {
        max_retries: 2,
        retry_backoff: Duration::from_micros(200),
        faults: Some(FaultInjector::new(spec.with_seed(seed))),
        ..ServiceConfig::default()
    };
    let service = service_with(config, None);

    let response = service.compile(&small_program(64)).unwrap();
    assert_eq!(response.served_from, ServedFrom::Synthesized);
    let stats = service.stats();
    assert_eq!(stats.synth_panics, 1, "{stats}");
    assert_eq!(stats.retries, 1, "{stats}");
    assert_eq!(
        stats.syntheses, 2,
        "both attempts claimed the synthesis, {stats}"
    );
}

/// With the one slot taken and a zero-length queue, the next request is
/// shed immediately with a typed `Overloaded` — and admitted again once
/// the slot frees up.
#[test]
fn full_queue_sheds_with_typed_overload() {
    let dir = unique_temp_dir("shed");
    // The slot-holder's artifact store is slowed by injected I/O latency,
    // which keeps the admission slot occupied for a deterministic window
    // even if the synthesis itself is fast.
    let injector = FaultInjector::new(FaultSpec {
        io_delay: Duration::from_millis(400),
        ..FaultSpec::default()
    });
    let config = ServiceConfig {
        max_concurrent: 1,
        queue_capacity: 0,
        faults: Some(injector.clone()),
        ..ServiceConfig::default()
    };
    let service = Arc::new(service_with(config, Some(&dir)));

    let holder = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || service.compile(&slow_program()))
    };
    // Wait until the holder owns the only concurrency slot.
    while service.stats().syntheses == 0 {
        std::thread::yield_now();
    }

    let err = service.compile(&small_program(96)).unwrap_err();
    match err {
        CompileError::Overloaded { queued, capacity } => {
            assert_eq!(capacity, 0);
            assert_eq!(queued, 0);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.shed, 1);
    // A shed arrival must register in the queue-depth high-water mark even
    // though it never parked (it was denied at depth 1: itself).
    assert!(
        stats.max_queue_depth >= 1,
        "shed traffic must raise max_queue_depth: {stats}"
    );

    holder
        .join()
        .unwrap()
        .expect("the slot holder itself succeeds");
    // The slot is free again: the shed request is admitted on retry.
    injector.set_enabled(false);
    let response = service.compile(&small_program(96)).unwrap();
    assert_eq!(response.served_from, ServedFrom::Synthesized);
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression test for the PR 6 gap: a deadline expiring *after* admission
/// but *during* synthesis must cooperatively cancel the in-flight search —
/// the claimant returns a typed `DeadlineExceeded` within the cancellation
/// poll bound and frees its admission slot, instead of running the search
/// to completion.
#[test]
fn deadline_expiring_mid_synthesis_cancels_the_claimant() {
    let config = ServiceConfig {
        deadline: Some(Duration::from_millis(20)),
        ..ServiceConfig::default()
    };
    let service = service_with(config, None);

    let started = std::time::Instant::now();
    let err = service.compile(&slow_program()).unwrap_err();
    let turnaround = started.elapsed();
    match err {
        CompileError::DeadlineExceeded { elapsed } => {
            assert!(elapsed >= Duration::from_millis(20), "elapsed {elapsed:?}");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // The search aborts within the cancellation-poll bound (watchdog scan
    // interval + one search row + unwind), not after the full multi-second
    // search. The generous cap still distinguishes abort from completion.
    assert!(
        turnaround < Duration::from_secs(5),
        "cancellation took {turnaround:?} — the search likely ran to completion"
    );
    let stats = service.stats();
    assert_eq!(stats.deadline_exceeded, 1, "{stats}");
    assert_eq!(
        stats.cancelled, 1,
        "the in-flight synthesis aborted: {stats}"
    );
    // The slot was freed and the cancel-to-free latency recorded.
    assert_eq!(stats.queue_depth, 0, "{stats}");
    let latencies = service.cancel_to_free_latencies();
    assert_eq!(latencies.len(), 1, "{latencies:?}");
}

/// The barrier-synced coalesced variant of the regression above: waiters
/// that joined the doomed synthesis all receive the broadcast typed error —
/// nobody hangs, nobody gets a partial artifact.
#[test]
fn deadline_expires_while_coalesced() {
    let config = ServiceConfig {
        deadline: Some(Duration::from_millis(25)),
        ..ServiceConfig::default()
    };
    let service = Arc::new(service_with(config, None));
    let program = slow_program();

    let n = 4;
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let service = Arc::clone(&service);
            let program = program.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                service.compile(&program)
            })
        })
        .collect();

    // Every thread — the claimant whose search is cancelled mid-flight and
    // the coalesced waiters it broadcasts to — returns DeadlineExceeded.
    for handle in handles {
        match handle.join().expect("client thread must not die") {
            Err(CompileError::DeadlineExceeded { .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }
    let stats = service.stats();
    assert_eq!(stats.deadline_exceeded, n as u64, "{stats}");
    assert_eq!(stats.cancelled, 1, "one cancelled synthesis: {stats}");
    assert_eq!(stats.queue_depth, 0, "no leaked slots: {stats}");
}

/// Shutdown mid-burst: queued waiters drain with a typed shutdown
/// cancellation, the in-flight synthesis is cancelled, and the in-flight
/// map empties — no client hangs and no slot leaks.
#[test]
fn shutdown_drains_queued_waiters_and_cancels_inflight() {
    let config = ServiceConfig {
        max_concurrent: 1,
        queue_capacity: 8,
        ..ServiceConfig::default()
    };
    let service = Arc::new(service_with(config, None));

    // The slot holder runs a long synthesis...
    let holder = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || service.compile(&slow_program()))
    };
    while service.stats().syntheses == 0 {
        std::thread::yield_now();
    }
    // ...and distinct kernels queue behind it.
    let queued: Vec<_> = [32usize, 48, 64]
        .into_iter()
        .map(|k| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || service.compile(&small_program(k)))
        })
        .collect();
    while service.stats().queue_depth < 3 {
        std::thread::yield_now();
    }

    service.shutdown();

    match holder.join().expect("holder thread must not die") {
        Err(CompileError::Cancelled { .. }) => {}
        other => panic!("the in-flight synthesis must be cancelled, got {other:?}"),
    }
    for handle in queued {
        match handle.join().expect("queued thread must not die") {
            Err(CompileError::Cancelled { .. }) => {}
            other => panic!("queued waiters must drain typed, got {other:?}"),
        }
    }
    let stats = service.stats();
    assert!(stats.shutdown_drained >= 4, "{stats}");
    assert_eq!(stats.cancelled, 1, "{stats}");
    assert_eq!(stats.queue_depth, 0, "queue must drain: {stats}");
    // Requests after shutdown are rejected typed, immediately.
    assert!(matches!(
        service.compile(&small_program(96)),
        Err(CompileError::Cancelled { .. })
    ));
}

/// PR 9 regression: shutting down mid-flight cancels an in-flight
/// *branch-and-bound pruned* search (pruning is the default compile path)
/// with the typed `Cancelled` error and leaves zero admission slots held —
/// the shared incumbent cell must not keep the claimant running or wedge
/// the cooperative cancel.
#[test]
fn cancelled_pruned_search_frees_its_admission_slot() {
    if !hexcute_core::prune_enabled() {
        // Reference-paths CI leg (HEXCUTE_DISABLE_PRUNE=1): the pruned
        // compile path is off process-wide, so there is nothing to regress.
        return;
    }
    assert!(
        CompilerOptions::new().synthesis.prune,
        "this regression targets the default pruned compile path"
    );
    let config = ServiceConfig {
        max_concurrent: 1,
        queue_capacity: 4,
        ..ServiceConfig::default()
    };
    let service = Arc::new(service_with(config, None));
    let holder = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || service.compile(&slow_program()))
    };
    while service.stats().syntheses == 0 {
        std::thread::yield_now();
    }
    service.shutdown();
    match holder.join().expect("holder thread must not die") {
        Err(CompileError::Cancelled { .. }) => {}
        other => panic!("the pruned in-flight synthesis must cancel typed, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.cancelled, 1, "{stats}");
    assert_eq!(stats.queue_depth, 0, "no leaked admission slots: {stats}");
    assert_eq!(
        service.cancel_to_free_latencies().len(),
        1,
        "the cancelled claimant must free its slot"
    );
}

/// A request still sitting in the admission queue when its deadline passes
/// fails with `DeadlineExceeded` instead of waiting forever. (Since PR 8
/// the slot holder's own deadline also cancels its in-flight synthesis, so
/// both requests fail typed.)
#[test]
fn deadline_expires_while_queued() {
    let config = ServiceConfig {
        max_concurrent: 1,
        queue_capacity: 4,
        deadline: Some(Duration::from_millis(20)),
        ..ServiceConfig::default()
    };
    let service = Arc::new(service_with(config, None));

    let holder = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || service.compile(&slow_program()))
    };
    while service.stats().syntheses == 0 {
        std::thread::yield_now();
    }

    // A *different* kernel can't coalesce; it queues for the slot and its
    // deadline expires (while queued, or mid-synthesis if the cancelled
    // holder frees the slot first — typed either way).
    let err = service.compile(&small_program(32)).unwrap_err();
    assert!(
        matches!(err, CompileError::DeadlineExceeded { .. }),
        "expected DeadlineExceeded, got {err:?}"
    );
    let stats = service.stats();
    assert!(stats.deadline_exceeded >= 1, "{stats}");
    assert!(stats.max_queue_depth >= 1, "{stats}");

    let err = holder
        .join()
        .unwrap()
        .expect_err("the holder's own deadline cancels its synthesis");
    assert!(
        matches!(err, CompileError::DeadlineExceeded { .. }),
        "expected DeadlineExceeded, got {err:?}"
    );
}

/// A bounded service admits everything that fits in the queue: four
/// distinct kernels through one slot all succeed, serialized.
#[test]
fn bounded_queue_serializes_without_loss() {
    let config = ServiceConfig {
        max_concurrent: 1,
        queue_capacity: 8,
        ..ServiceConfig::default()
    };
    let service = Arc::new(service_with(config, None));
    let barrier = Arc::new(Barrier::new(4));
    let handles: Vec<_> = [32usize, 48, 64, 80]
        .into_iter()
        .map(|k| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                service.compile(&small_program(k))
            })
        })
        .collect();
    for handle in handles {
        let response = handle
            .join()
            .unwrap()
            .expect("queued requests must all be served");
        assert_eq!(response.served_from, ServedFrom::Synthesized);
    }
    let stats = service.stats();
    assert_eq!(stats.syntheses, 4, "{stats}");
    assert_eq!(stats.shed + stats.deadline_exceeded, 0, "{stats}");
    assert_eq!(stats.queue_depth, 0, "queue must drain, {stats}");
}
