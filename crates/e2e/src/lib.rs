//! # hexcute-e2e
//!
//! A vLLM-style end-to-end serving model: the decode-step latency of a large
//! language model is the sum of its per-layer kernel latencies, and swapping
//! the Triton/CUTLASS-backed operators for Hexcute-backed ones changes only
//! those kernel latencies. This reproduces the aggregation behind Fig. 13 of
//! the paper (DeepSeek-R1-AWQ, Jamba-mini-1.7 and Qwen-3-32B on H100 GPUs).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod serving;

pub use serving::{decode_latency_ms, DecodeReport, KernelBackend, ModelConfig, ModelKind};
