//! # hexcute-e2e
//!
//! A vLLM-style end-to-end serving model: the decode-step latency of a large
//! language model is the sum of its per-layer kernel latencies, and swapping
//! the Triton/CUTLASS-backed operators for Hexcute-backed ones changes only
//! those kernel latencies. This reproduces the aggregation behind Fig. 13 of
//! the paper (DeepSeek-R1-AWQ, Jamba-mini-1.7 and Qwen-3-32B on H100 GPUs).
//!
//! The serving layer compiles through the [`CompileService`]: a batched
//! compile front-end over the persistent kernel-artifact cache
//! ([`hexcute_core::cache`]) that coalesces concurrent requests for the same
//! kernel and fans distinct requests out across the persistent worker pool.
//! [`decode_latency_ms_with`] is the warm-cache serving mode; the
//! `repro_serving` binary reports the resulting cold vs. warm throughput
//! (`BENCH_pr4.json`).
//!
//! Since PR 10 the front-end is priority- and tenant-aware: requests carry
//! a [`Priority`] class and a [`TenantId`], admission is a ticketed
//! two-class queue with anti-starvation boosts and per-tenant fairness,
//! and an optional speculative prefetcher warms predicted fingerprints
//! from spare capacity (`repro_serving_traffic`, `BENCH_pr10.json`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod service;
mod serving;

pub use service::{
    CompileResponse, CompileService, Priority, ServedFrom, ServiceConfig, ServiceStats, TenantId,
};
pub use serving::{
    decode_latency_ms, decode_latency_ms_with, decode_step_programs, DecodeReport, KernelBackend,
    ModelConfig, ModelKind,
};
