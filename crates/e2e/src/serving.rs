//! Model configurations and the decode-step latency model.

use hexcute_arch::{DType, GpuArch};
use hexcute_baselines::{
    fused_grouped_gemm_latency_us, library_latency_us, marlin_new_moe_latency_us,
    marlin_w4a16_latency_us, per_group_launch_latency_us, triton_latency_us, triton_moe_program,
    Library, Workload,
};
use hexcute_kernels::attention::AttentionShape;
use hexcute_kernels::gemm::{fp8_blockwise_gemm, GemmConfig, GemmShape};
use hexcute_kernels::grouped_gemm::{grouped_gemm, GroupedGemmConfig, GroupedGemmShape};
use hexcute_kernels::mamba::{selective_scan, ScanConfig, ScanShape};
use hexcute_kernels::moe::{mixed_type_moe, MoeConfig, MoeDataflow, MoeShape};
use hexcute_kernels::quant_gemm::{w4a16_gemm, QuantGemmConfig, QuantGemmShape};

use crate::service::CompileService;

/// Which kernels back the model's operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// The original vLLM implementation (Triton for MoE and scan, CUTLASS
    /// for FP8 GEMM).
    Baseline,
    /// Hexcute-generated kernels integrated into vLLM.
    Hexcute,
    /// The hand-written Marlin-new MoE kernels (upper baseline for MoE).
    MarlinNew,
}

impl KernelBackend {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            KernelBackend::Baseline => "vLLM (Triton/CUTLASS)",
            KernelBackend::Hexcute => "vLLM + Hexcute",
            KernelBackend::MarlinNew => "vLLM + Marlin-new",
        }
    }
}

/// The architectural family of a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// A mixture-of-experts transformer with AWQ (INT4) weights.
    MoeAwq,
    /// A hybrid Mamba/attention/MoE model.
    Hybrid,
    /// A dense transformer served with blockwise FP8 GEMMs.
    DenseFp8,
    /// A dense transformer with AWQ/GPTQ W4A16 weights (packed INT4 +
    /// grouped scales, dequantized in flight).
    DenseW4A16,
    /// A mixture-of-experts transformer with FP16 experts served by one
    /// fused grouped GEMM per layer.
    MoeGrouped,
}

/// A (simplified) model configuration for decode-latency estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Model name.
    pub name: String,
    /// Architectural family.
    pub kind: ModelKind,
    /// Number of transformer (or Mamba) layers.
    pub layers: usize,
    /// Hidden size.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Head dimension.
    pub head_dim: usize,
    /// MoE expert count (0 for dense models).
    pub experts: usize,
    /// MoE intermediate size (or dense FFN intermediate size).
    pub intermediate: usize,
    /// Fraction of layers that are Mamba (hybrid models only).
    pub mamba_fraction: f64,
    /// Mamba state dimension.
    pub mamba_state: usize,
    /// Tensor-parallel GPU count.
    pub tensor_parallel: usize,
}

impl ModelConfig {
    /// DeepSeek-R1 with AWQ INT4 MoE weights (the Fig. 13 configuration).
    pub fn deepseek_r1_awq() -> Self {
        ModelConfig {
            name: "DeepSeek-R1-AWQ".to_string(),
            kind: ModelKind::MoeAwq,
            layers: 61,
            hidden: 7168,
            heads: 128,
            head_dim: 128,
            experts: 256,
            intermediate: 2048,
            mamba_fraction: 0.0,
            mamba_state: 0,
            tensor_parallel: 8,
        }
    }

    /// Jamba-mini-1.7: a hybrid Mamba/attention/MoE model.
    pub fn jamba_mini() -> Self {
        ModelConfig {
            name: "Jamba-mini-1.7".to_string(),
            kind: ModelKind::Hybrid,
            layers: 32,
            hidden: 4096,
            heads: 32,
            head_dim: 128,
            experts: 16,
            intermediate: 8192,
            mamba_fraction: 0.75,
            mamba_state: 16,
            tensor_parallel: 2,
        }
    }

    /// Llama-3-70B with AWQ W4A16 weights (group size 128): the dense
    /// quantized-GEMM serving configuration.
    pub fn llama3_70b_awq() -> Self {
        ModelConfig {
            name: "Llama-3-70B-AWQ".to_string(),
            kind: ModelKind::DenseW4A16,
            layers: 80,
            hidden: 8192,
            heads: 64,
            head_dim: 128,
            experts: 0,
            intermediate: 28672,
            mamba_fraction: 0.0,
            mamba_state: 0,
            tensor_parallel: 4,
        }
    }

    /// Mixtral-8x7B with FP16 experts: the grouped/batched-GEMM serving
    /// configuration (one fused grouped GEMM per MoE layer).
    pub fn mixtral_8x7b() -> Self {
        ModelConfig {
            name: "Mixtral-8x7B".to_string(),
            kind: ModelKind::MoeGrouped,
            layers: 32,
            hidden: 4096,
            heads: 32,
            head_dim: 128,
            experts: 8,
            intermediate: 14336,
            mamba_fraction: 0.0,
            mamba_state: 0,
            tensor_parallel: 2,
        }
    }

    /// Qwen-3-32B served with blockwise-scaled FP8 GEMMs.
    pub fn qwen3_32b() -> Self {
        ModelConfig {
            name: "Qwen-3-32B".to_string(),
            kind: ModelKind::DenseFp8,
            layers: 64,
            hidden: 5120,
            heads: 64,
            head_dim: 128,
            experts: 0,
            intermediate: 25600,
            mamba_fraction: 0.0,
            mamba_state: 0,
            tensor_parallel: 2,
        }
    }
}

/// The Hexcute-compiled programs one decode step of `model` requests (the
/// attention component calls a library and never compiles). This is exactly
/// the request set [`decode_latency_ms_with`] sends for
/// [`KernelBackend::Hexcute`], exposed so harnesses (the chaos replay in
/// `repro_robustness`) can drive the compile service request-by-request and
/// compare artifacts against a reference run.
pub fn decode_step_programs(
    model: &ModelConfig,
    batch: usize,
    seq_len: usize,
) -> Vec<hexcute_ir::Program> {
    let tp = model.tensor_parallel.max(1);
    let mut programs = Vec::new();
    match model.kind {
        ModelKind::MoeAwq | ModelKind::Hybrid if model.experts > 0 => {
            let shape = MoeShape {
                tokens: batch,
                hidden: model.hidden,
                intermediate: (model.intermediate / tp).max(256),
                experts: model.experts,
                top_k: 8.min(model.experts),
            };
            programs.push(
                mixed_type_moe(shape, MoeConfig::default(), MoeDataflow::Efficient)
                    .expect("MoE kernel construction"),
            );
        }
        ModelKind::DenseW4A16 => {
            let shape = QuantGemmShape::new(
                batch.max(16),
                (model.intermediate / tp).max(256),
                model.hidden,
                128,
            );
            programs.push(
                w4a16_gemm(shape, QuantGemmConfig::default()).expect("W4A16 GEMM construction"),
            );
        }
        ModelKind::MoeGrouped => {
            let shape = GroupedGemmShape::top_k_routed(
                model.experts,
                batch,
                2,
                (model.intermediate / tp).max(256),
                model.hidden,
            );
            programs.push(
                grouped_gemm(&shape, GroupedGemmConfig::default())
                    .expect("grouped GEMM construction"),
            );
        }
        _ => {
            let shape = GemmShape::new(
                batch.max(16),
                (model.intermediate / tp).max(256),
                model.hidden,
            );
            programs.push(
                fp8_blockwise_gemm(shape, GemmConfig::default()).expect("FP8 GEMM construction"),
            );
        }
    }
    if (model.layers as f64 * model.mamba_fraction).round() > 0.0 {
        let shape = ScanShape::new(batch, model.hidden / tp, model.mamba_state, seq_len.max(64));
        programs.push(selective_scan(shape, ScanConfig::default()).expect("scan construction"));
    }
    programs
}

/// The per-component breakdown of one decode step.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeReport {
    /// Model name.
    pub model: String,
    /// Backend used.
    pub backend: KernelBackend,
    /// Attention time per decode step (ms).
    pub attention_ms: f64,
    /// MoE / FFN time per decode step (ms).
    pub ffn_ms: f64,
    /// Mamba scan time per decode step (ms).
    pub mamba_ms: f64,
    /// Total decode-step latency (ms).
    pub total_ms: f64,
}

/// Estimates the latency of one decode step (one output token) for the given
/// model, backend, batch size and sequence length.
///
/// Every call compiles through a fresh, memory-only [`CompileService`] — the
/// historical (cold) behaviour. Real deployments should hold one service and
/// use [`decode_latency_ms_with`]: after the first decode step every kernel
/// is an artifact-cache hit, which is what the cold/warm split in
/// `repro_serving` (`BENCH_pr4.json`) measures.
pub fn decode_latency_ms(
    model: &ModelConfig,
    backend: KernelBackend,
    batch: usize,
    seq_len: usize,
    arch: &GpuArch,
) -> DecodeReport {
    let service = CompileService::new(arch.clone());
    decode_latency_ms_with(model, backend, batch, seq_len, &service)
}

/// [`decode_latency_ms`] compiling through a caller-provided
/// [`CompileService`] (the warm-cache serving mode): repeated decode steps —
/// and, with a disk-backed cache, repeated *process starts* — reuse the
/// cached kernel artifacts instead of re-synthesizing them. The reported
/// latencies are bit-identical to the cold path's.
pub fn decode_latency_ms_with(
    model: &ModelConfig,
    backend: KernelBackend,
    batch: usize,
    seq_len: usize,
    service: &CompileService,
) -> DecodeReport {
    let arch = service.arch();
    let tp = model.tensor_parallel.max(1);
    let heads_per_gpu = (model.heads / tp).max(1);

    // ----- Attention (identical for every backend in the paper's setup). --
    let attn_shape =
        AttentionShape::decoding(batch, heads_per_gpu, seq_len.max(64), model.head_dim);
    let attn_layers = (model.layers as f64 * (1.0 - model.mamba_fraction))
        .round()
        .max(1.0);
    let attention_us = library_latency_us(
        Library::FlashInfer,
        &Workload::new(attn_shape.flops(), attn_shape.bytes(), DType::F16),
        arch,
    );
    let attention_ms = attention_us * attn_layers / 1000.0;

    // ----- FFN / MoE -------------------------------------------------------
    let ffn_us = match model.kind {
        ModelKind::MoeAwq | ModelKind::Hybrid if model.experts > 0 => {
            let shape = MoeShape {
                tokens: batch,
                hidden: model.hidden,
                intermediate: (model.intermediate / tp).max(256),
                experts: model.experts,
                top_k: 8.min(model.experts),
            };
            let config = MoeConfig::default();
            match backend {
                KernelBackend::Hexcute => {
                    let program = mixed_type_moe(shape, config, MoeDataflow::Efficient)
                        .expect("MoE kernel construction");
                    service
                        .compile(&program)
                        .expect("MoE compilation")
                        .latency_us()
                }
                KernelBackend::Baseline => {
                    let program =
                        triton_moe_program(shape, config).expect("Triton MoE construction");
                    triton_latency_us(&program, arch)
                        .expect("Triton MoE compilation")
                        .latency_us
                }
                KernelBackend::MarlinNew => marlin_new_moe_latency_us(&shape, arch),
            }
        }
        ModelKind::DenseW4A16 => {
            // Two W4A16 projections per layer (up + down), group size 128.
            let shape = QuantGemmShape::new(
                batch.max(16),
                (model.intermediate / tp).max(256),
                model.hidden,
                128,
            );
            match backend {
                KernelBackend::Hexcute => {
                    let program = w4a16_gemm(shape, QuantGemmConfig::default())
                        .expect("W4A16 GEMM construction");
                    2.0 * service
                        .compile(&program)
                        .expect("W4A16 GEMM compilation")
                        .latency_us()
                }
                KernelBackend::MarlinNew => 2.0 * marlin_w4a16_latency_us(&shape, arch),
                KernelBackend::Baseline => {
                    // vLLM without a mixed-type kernel dequantizes to a
                    // scratch FP16 buffer and calls cuBLAS: the GEMM streams
                    // the full FP16 weights.
                    let fp16_bytes =
                        (shape.m * shape.k + shape.n * shape.k + shape.m * shape.n) as f64 * 2.0;
                    2.0 * library_latency_us(
                        Library::CuBlas,
                        &Workload::new(shape.flops(), fp16_bytes, DType::F16),
                        arch,
                    )
                }
            }
        }
        ModelKind::MoeGrouped => {
            // One fused grouped GEMM per MoE layer, top-2 routing.
            let shape = GroupedGemmShape::top_k_routed(
                model.experts,
                batch,
                2,
                (model.intermediate / tp).max(256),
                model.hidden,
            );
            match backend {
                KernelBackend::Hexcute => {
                    let program = grouped_gemm(&shape, GroupedGemmConfig::default())
                        .expect("grouped GEMM construction");
                    service
                        .compile(&program)
                        .expect("grouped GEMM compilation")
                        .latency_us()
                }
                KernelBackend::MarlinNew => fused_grouped_gemm_latency_us(&shape, arch),
                KernelBackend::Baseline => per_group_launch_latency_us(&shape, arch),
            }
        }
        _ => {
            // Dense FFN: two blockwise FP8 GEMMs per layer.
            let shape = GemmShape::new(
                batch.max(16),
                (model.intermediate / tp).max(256),
                model.hidden,
            );
            match backend {
                KernelBackend::Hexcute | KernelBackend::MarlinNew => {
                    let program = fp8_blockwise_gemm(shape, GemmConfig::default())
                        .expect("FP8 GEMM construction");
                    2.0 * service
                        .compile(&program)
                        .expect("FP8 GEMM compilation")
                        .latency_us()
                }
                KernelBackend::Baseline => {
                    2.0 * library_latency_us(
                        Library::CutlassFp8,
                        &Workload::new(shape.flops(), shape.bytes(8, 8, 16), DType::F8E4M3),
                        arch,
                    )
                }
            }
        }
    };
    let moe_layers = match model.kind {
        ModelKind::Hybrid => model.layers as f64 * 0.5,
        _ => model.layers as f64,
    };
    let ffn_ms = ffn_us * moe_layers / 1000.0;

    // ----- Mamba scan (hybrid models only) ---------------------------------
    let mamba_layers = (model.layers as f64 * model.mamba_fraction).round();
    let mamba_ms = if mamba_layers > 0.0 {
        let shape = ScanShape::new(batch, model.hidden / tp, model.mamba_state, seq_len.max(64));
        let us = match backend {
            KernelBackend::Hexcute | KernelBackend::MarlinNew => {
                let program =
                    selective_scan(shape, ScanConfig::default()).expect("scan construction");
                service
                    .compile(&program)
                    .expect("scan compilation")
                    .latency_us()
            }
            KernelBackend::Baseline => library_latency_us(
                Library::MambaLibrary,
                &Workload::new(shape.flops(), shape.bytes(), DType::F16),
                arch,
            ),
        };
        us * mamba_layers / 1000.0
    } else {
        0.0
    };

    let total_ms = attention_ms + ffn_ms + mamba_ms;
    DecodeReport {
        model: model.name.clone(),
        backend,
        attention_ms,
        ffn_ms,
        mamba_ms,
        total_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hexcute_speeds_up_deepseek_moe_decoding() {
        let arch = GpuArch::h100();
        let model = ModelConfig::deepseek_r1_awq();
        let baseline = decode_latency_ms(&model, KernelBackend::Baseline, 8, 2048, &arch);
        let hexcute = decode_latency_ms(&model, KernelBackend::Hexcute, 8, 2048, &arch);
        let speedup = baseline.total_ms / hexcute.total_ms;
        assert!(
            speedup > 1.3,
            "expected an end-to-end speedup, got {speedup:.2}x"
        );
        // The win comes from the MoE layers, not from attention.
        assert!(baseline.ffn_ms > hexcute.ffn_ms);
        assert!((baseline.attention_ms - hexcute.attention_ms).abs() < 1e-9);
    }

    #[test]
    fn hexcute_speeds_up_the_mamba_model() {
        let arch = GpuArch::h100();
        let model = ModelConfig::jamba_mini();
        let baseline = decode_latency_ms(&model, KernelBackend::Baseline, 16, 4096, &arch);
        let hexcute = decode_latency_ms(&model, KernelBackend::Hexcute, 16, 4096, &arch);
        assert!(baseline.mamba_ms > hexcute.mamba_ms * 1.5);
        assert!(baseline.total_ms > hexcute.total_ms);
    }

    #[test]
    fn dense_fp8_model_gains_are_modest() {
        let arch = GpuArch::h100();
        let model = ModelConfig::qwen3_32b();
        let baseline = decode_latency_ms(&model, KernelBackend::Baseline, 32, 2048, &arch);
        let hexcute = decode_latency_ms(&model, KernelBackend::Hexcute, 32, 2048, &arch);
        let speedup = baseline.total_ms / hexcute.total_ms;
        assert!(
            speedup > 0.85 && speedup < 1.6,
            "speedup {speedup:.2}x out of the expected range"
        );
    }

    #[test]
    fn warm_cache_serving_is_bit_identical_and_reuses_artifacts() {
        let arch = GpuArch::h100();
        let service = CompileService::new(arch.clone());
        let model = ModelConfig::jamba_mini();
        let cold = decode_latency_ms_with(&model, KernelBackend::Hexcute, 8, 1024, &service);
        let after_cold = service.stats();
        assert!(after_cold.syntheses > 0);
        let warm = decode_latency_ms_with(&model, KernelBackend::Hexcute, 8, 1024, &service);
        let after_warm = service.stats();
        // The warm step must not synthesize anything new...
        assert_eq!(after_cold.syntheses, after_warm.syntheses);
        assert!(after_warm.cache.memory.hits > after_cold.cache.memory.hits);
        // ...and must report exactly the cold step's numbers.
        assert_eq!(cold, warm);
        // The transient-service entry point agrees with the warm mode.
        let transient = decode_latency_ms(&model, KernelBackend::Hexcute, 8, 1024, &arch);
        assert_eq!(cold, transient);
    }

    #[test]
    fn model_configs_are_distinct() {
        let configs = [
            ModelConfig::deepseek_r1_awq(),
            ModelConfig::jamba_mini(),
            ModelConfig::qwen3_32b(),
            ModelConfig::llama3_70b_awq(),
            ModelConfig::mixtral_8x7b(),
        ];
        assert_eq!(
            configs
                .iter()
                .map(|c| c.name.clone())
                .collect::<std::collections::HashSet<_>>()
                .len(),
            5
        );
        assert_eq!(configs[0].kind, ModelKind::MoeAwq);
        assert_eq!(configs[1].kind, ModelKind::Hybrid);
        assert_eq!(configs[2].kind, ModelKind::DenseFp8);
        assert_eq!(configs[3].kind, ModelKind::DenseW4A16);
        assert_eq!(configs[4].kind, ModelKind::MoeGrouped);
    }

    #[test]
    fn hexcute_speeds_up_w4a16_dense_decoding() {
        let arch = GpuArch::h100();
        let model = ModelConfig::llama3_70b_awq();
        let baseline = decode_latency_ms(&model, KernelBackend::Baseline, 8, 2048, &arch);
        let hexcute = decode_latency_ms(&model, KernelBackend::Hexcute, 8, 2048, &arch);
        let marlin = decode_latency_ms(&model, KernelBackend::MarlinNew, 8, 2048, &arch);
        // The dequant-to-global + cuBLAS baseline streams 4x the weight
        // bytes; dequant-in-flight wins.
        assert!(
            baseline.ffn_ms > hexcute.ffn_ms * 1.5,
            "baseline {:.3} ms vs hexcute {:.3} ms",
            baseline.ffn_ms,
            hexcute.ffn_ms
        );
        // The synthesized kernel lands in the same regime as the
        // hand-written Marlin model (the paper reports 0.89x-1.01x).
        let ratio = marlin.ffn_ms / hexcute.ffn_ms;
        assert!(
            ratio > 0.5 && ratio < 2.0,
            "Marlin/Hexcute ratio {ratio:.2} out of range"
        );
    }

    #[test]
    fn grouped_moe_beats_per_expert_launches() {
        let arch = GpuArch::h100();
        let model = ModelConfig::mixtral_8x7b();
        let baseline = decode_latency_ms(&model, KernelBackend::Baseline, 8, 2048, &arch);
        let hexcute = decode_latency_ms(&model, KernelBackend::Hexcute, 8, 2048, &arch);
        // One fused launch per layer vs one launch per expert per layer.
        assert!(
            baseline.ffn_ms > hexcute.ffn_ms * 2.0,
            "baseline {:.3} ms vs hexcute {:.3} ms",
            baseline.ffn_ms,
            hexcute.ffn_ms
        );
        assert!((baseline.attention_ms - hexcute.attention_ms).abs() < 1e-9);
    }
}
