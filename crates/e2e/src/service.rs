//! A batched compile service over the persistent kernel-artifact cache.
//!
//! The serving loop (see [`crate::decode_latency_ms_with`]) issues the *same* few dozen
//! kernel compilations over and over — per decode step, per process start,
//! per replica. [`CompileService`] turns the PR 1–3 fast search into a
//! servable subsystem:
//!
//! * **Cache first.** Every request is keyed by the stable artifact
//!   fingerprint and answered from the [`KernelCache`] (memory, then disk)
//!   when possible.
//! * **Coalescing.** Concurrent requests for the *same* fingerprint join a
//!   single in-flight synthesis instead of each running the search: the
//!   first requester synthesizes, the rest block on its completion and
//!   share the resulting artifact.
//! * **Batching.** [`CompileService::compile_batch`] fans *distinct*
//!   requests out across the PR 3 persistent worker pool; duplicates within
//!   a batch deduplicate through the coalescing path.
//!
//! ```
//! use hexcute_arch::{DType, GpuArch};
//! use hexcute_e2e::{CompileService, ServedFrom};
//! use hexcute_ir::KernelBuilder;
//! use hexcute_layout::Layout;
//!
//! let mut kb = KernelBuilder::new("served_copy", 128);
//! let x = kb.global_view("x", DType::F32, Layout::row_major(&[64, 64]), &[64, 64]);
//! let y = kb.global_view("y", DType::F32, Layout::row_major(&[64, 64]), &[64, 64]);
//! let r = kb.register_tensor("r", DType::F32, &[64, 64]);
//! kb.copy(x, r);
//! kb.copy(r, y);
//! let program = kb.build()?;
//!
//! let service = CompileService::new(GpuArch::a100());
//! let cold = service.compile(&program)?;
//! assert_eq!(cold.served_from, ServedFrom::Synthesized);
//! let warm = service.compile(&program)?;
//! assert_eq!(warm.served_from, ServedFrom::Memory);
//! assert_eq!(*cold.artifact, *warm.artifact);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use hexcute_arch::GpuArch;
use hexcute_core::{
    ArtifactSource, CompileError, Compiler, CompilerOptions, KernelArtifact, KernelCache,
    KernelCacheConfig, KernelCacheStats,
};
use hexcute_ir::Program;

/// How a [`CompileResponse`] was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// The artifact cache's in-memory front.
    Memory,
    /// The artifact cache's disk store.
    Disk,
    /// This request ran the synthesis itself.
    Synthesized,
    /// This request joined another request's in-flight synthesis.
    Coalesced,
}

impl fmt::Display for ServedFrom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ServedFrom::Memory => "memory",
            ServedFrom::Disk => "disk",
            ServedFrom::Synthesized => "synthesized",
            ServedFrom::Coalesced => "coalesced",
        })
    }
}

impl From<ArtifactSource> for ServedFrom {
    fn from(source: ArtifactSource) -> Self {
        match source {
            ArtifactSource::Memory => ServedFrom::Memory,
            ArtifactSource::Disk => ServedFrom::Disk,
            ArtifactSource::Synthesized => ServedFrom::Synthesized,
        }
    }
}

/// One served compilation: the (shared) artifact plus how it was obtained.
#[derive(Debug, Clone)]
pub struct CompileResponse {
    /// The compiled kernel artifact.
    pub artifact: Arc<KernelArtifact>,
    /// Where the artifact came from.
    pub served_from: ServedFrom,
}

impl CompileResponse {
    /// The estimated kernel latency in microseconds.
    pub fn latency_us(&self) -> f64 {
        self.artifact.latency_us()
    }
}

/// Counters describing a [`CompileService`]'s behaviour. Snapshot via
/// [`CompileService::stats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Requests served (including batch members).
    pub requests: u64,
    /// Requests that joined another request's in-flight synthesis.
    pub coalesced: u64,
    /// Syntheses actually executed.
    pub syntheses: u64,
    /// [`CompileService::compile_batch`] invocations.
    pub batches: u64,
    /// The artifact cache's counters.
    pub cache: KernelCacheStats,
}

impl fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests ({} coalesced, {} batches), {} syntheses; artifact cache: {}",
            self.requests, self.coalesced, self.batches, self.syntheses, self.cache
        )
    }
}

/// The result slot of one in-flight synthesis.
enum InflightState {
    /// Synthesis still running.
    Pending,
    /// Finished; joiners clone this result.
    Done(Result<Arc<KernelArtifact>, CompileError>),
    /// The claiming request unwound without completing; joiners retry.
    Abandoned,
}

struct Inflight {
    state: Mutex<InflightState>,
    ready: Condvar,
}

impl fmt::Debug for Inflight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Inflight").finish_non_exhaustive()
    }
}

impl Inflight {
    fn new() -> Self {
        Inflight {
            state: Mutex::new(InflightState::Pending),
            ready: Condvar::new(),
        }
    }

    fn complete(&self, result: Result<Arc<KernelArtifact>, CompileError>) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        *state = InflightState::Done(result);
        self.ready.notify_all();
    }

    fn abandon(&self) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if matches!(*state, InflightState::Pending) {
            *state = InflightState::Abandoned;
        }
        self.ready.notify_all();
    }

    /// Blocks until the synthesis finishes. `None` means the claimant
    /// abandoned the job (it panicked): the joiner retries from the cache.
    fn wait(&self) -> Option<Result<Arc<KernelArtifact>, CompileError>> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            match &*state {
                InflightState::Pending => {
                    state = self.ready.wait(state).unwrap_or_else(|p| p.into_inner());
                }
                InflightState::Done(result) => return Some(result.clone()),
                InflightState::Abandoned => return None,
            }
        }
    }
}

/// Removes the in-flight entry (and wakes joiners) even if the claiming
/// request unwinds mid-synthesis, so joiners never block forever.
struct ClaimGuard<'a> {
    service: &'a CompileService,
    fingerprint: u64,
    entry: Arc<Inflight>,
    completed: bool,
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.entry.abandon();
        }
        self.service
            .inflight
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&self.fingerprint);
    }
}

/// A compile front-end for one target architecture: an artifact cache, a
/// request-coalescing layer and pool-backed batch compilation. The service
/// is `Sync` — one instance serves concurrent requests from many threads.
/// See the [module docs](self) for the serving rationale and an example.
#[derive(Debug)]
pub struct CompileService {
    compiler: Compiler,
    cache: KernelCache,
    inflight: Mutex<HashMap<u64, Arc<Inflight>>>,
    requests: AtomicU64,
    coalesced: AtomicU64,
    syntheses: AtomicU64,
    batches: AtomicU64,
}

impl CompileService {
    /// A service for `arch` with default compiler options and a
    /// **memory-only** cache (no files are touched). Use
    /// [`CompileService::with_config`] or [`CompileService::from_env`] for a
    /// persistent disk store.
    pub fn new(arch: GpuArch) -> Self {
        Self::with_config(arch, CompilerOptions::new(), KernelCacheConfig::default())
    }

    /// A service with explicit compiler options and cache configuration.
    pub fn with_config(
        arch: GpuArch,
        options: CompilerOptions,
        cache_config: KernelCacheConfig,
    ) -> Self {
        CompileService {
            compiler: Compiler::with_options(arch, options),
            cache: KernelCache::new(cache_config),
            inflight: Mutex::new(HashMap::new()),
            requests: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            syntheses: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        }
    }

    /// A service whose cache reads the `HEXCUTE_CACHE_*` environment
    /// variables (see [`KernelCacheConfig::from_env`]).
    pub fn from_env(arch: GpuArch) -> Self {
        Self::with_config(arch, CompilerOptions::new(), KernelCacheConfig::from_env())
    }

    /// The target architecture.
    pub fn arch(&self) -> &GpuArch {
        self.compiler.arch()
    }

    /// The underlying artifact cache.
    pub fn cache(&self) -> &KernelCache {
        &self.cache
    }

    /// Serves one compilation: answered from the cache when possible,
    /// coalesced onto an in-flight synthesis of the same fingerprint when
    /// one exists, synthesized (and stored) otherwise.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] when the synthesis fails; the error is
    /// shared by every coalesced requester of the same fingerprint (and is
    /// not cached — a later request retries).
    pub fn compile(&self, program: &Program) -> Result<CompileResponse, CompileError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let fingerprint = self.compiler.artifact_fingerprint(program);
        loop {
            if let Some((artifact, source)) = self.cache.get(fingerprint) {
                return Ok(CompileResponse {
                    artifact,
                    served_from: source.into(),
                });
            }
            let claim = {
                let mut inflight = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
                // Re-check under the map lock: a claimant inserts into the
                // cache *before* retiring its in-flight entry, so a request
                // arriving in between must not start a second synthesis.
                if let Some((artifact, source)) = self.cache.get(fingerprint) {
                    return Ok(CompileResponse {
                        artifact,
                        served_from: source.into(),
                    });
                }
                match inflight.get(&fingerprint) {
                    Some(entry) => Err(entry.clone()),
                    None => {
                        let entry = Arc::new(Inflight::new());
                        inflight.insert(fingerprint, entry.clone());
                        Ok(entry)
                    }
                }
            };
            match claim {
                Err(entry) => {
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    match entry.wait() {
                        Some(result) => {
                            return result.map(|artifact| CompileResponse {
                                artifact,
                                served_from: ServedFrom::Coalesced,
                            });
                        }
                        // The claimant unwound without a result: retry.
                        None => continue,
                    }
                }
                Ok(entry) => {
                    let mut guard = ClaimGuard {
                        service: self,
                        fingerprint,
                        entry,
                        completed: false,
                    };
                    self.syntheses.fetch_add(1, Ordering::Relaxed);
                    let result = self.compiler.compile_artifact(program).map(Arc::new);
                    if let Ok(artifact) = &result {
                        self.cache.insert(artifact.clone());
                    }
                    guard.entry.complete(result.clone());
                    guard.completed = true;
                    drop(guard);
                    return result.map(|artifact| CompileResponse {
                        artifact,
                        served_from: ServedFrom::Synthesized,
                    });
                }
            }
        }
    }

    /// Serves a batch of compilations concurrently on the persistent worker
    /// pool. Distinct fingerprints synthesize in parallel; duplicate
    /// fingerprints within the batch coalesce onto one synthesis. Results
    /// are returned in request order.
    pub fn compile_batch(
        &self,
        programs: Vec<Program>,
    ) -> Vec<Result<CompileResponse, CompileError>> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        hexcute_parallel::par_map(programs, |program| self.compile(&program))
    }

    /// A snapshot of the service and cache counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.requests.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            syntheses: self.syntheses.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            cache: self.cache.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hexcute_arch::DType;
    use hexcute_ir::KernelBuilder;
    use hexcute_kernels::attention::{mha_forward, AttentionConfig, AttentionShape};
    use hexcute_kernels::gemm::{fp16_gemm, GemmConfig, GemmShape};
    use hexcute_layout::Layout;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    fn small_program(name: &str) -> Program {
        let mut kb = KernelBuilder::new(name, 128);
        let x = kb.global_view("x", DType::F32, Layout::row_major(&[64, 64]), &[64, 64]);
        let y = kb.global_view("y", DType::F32, Layout::row_major(&[64, 64]), &[64, 64]);
        let r = kb.register_tensor("r", DType::F32, &[64, 64]);
        kb.copy(x, r);
        kb.copy(r, y);
        kb.build().unwrap()
    }

    fn unique_temp_dir(tag: &str) -> std::path::PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "hexcute-service-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn concurrent_same_key_requests_coalesce_to_one_synthesis() {
        let service = CompileService::new(GpuArch::a100());
        let program = fp16_gemm(GemmShape::new(1024, 1024, 1024), GemmConfig::default()).unwrap();
        let threads = 8;
        let barrier = Barrier::new(threads);
        let artifacts: Vec<Arc<KernelArtifact>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        service.compile(&program).unwrap().artifact
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let stats = service.stats();
        assert_eq!(stats.requests, threads as u64);
        assert_eq!(
            stats.syntheses, 1,
            "concurrent requests for one fingerprint must coalesce: {stats}"
        );
        for artifact in &artifacts[1..] {
            assert_eq!(**artifact, *artifacts[0]);
        }
    }

    #[test]
    fn batch_deduplicates_and_preserves_order() {
        let service = CompileService::new(GpuArch::a100());
        let a = small_program("batch_a");
        let b = small_program("batch_b");
        let batch = vec![a.clone(), b.clone(), a.clone(), b.clone(), a.clone()];
        let responses = service.compile_batch(batch);
        assert_eq!(responses.len(), 5);
        let artifacts: Vec<_> = responses.into_iter().map(|r| r.unwrap().artifact).collect();
        assert_eq!(artifacts[0].kernel, "batch_a");
        assert_eq!(artifacts[1].kernel, "batch_b");
        assert_eq!(*artifacts[0], *artifacts[2]);
        assert_eq!(*artifacts[0], *artifacts[4]);
        assert_eq!(*artifacts[1], *artifacts[3]);
        let stats = service.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.requests, 5);
        assert_eq!(
            stats.syntheses, 2,
            "three duplicate requests must be served without re-synthesis: {stats}"
        );
    }

    #[test]
    fn distinct_options_get_distinct_artifacts() {
        let arch = GpuArch::a100();
        let program = small_program("options_sensitive");
        let default = CompileService::new(arch.clone());
        let scalar = CompileService::with_config(
            arch,
            CompilerOptions {
                synthesis: hexcute_core::SynthesisOptions::scalar_fallback(),
                use_cost_model: true,
            },
            KernelCacheConfig::default(),
        );
        let d = default.compile(&program).unwrap();
        let s = scalar.compile(&program).unwrap();
        assert_ne!(d.artifact.fingerprint, s.artifact.fingerprint);
    }

    #[test]
    fn disk_store_survives_a_service_restart() {
        let dir = unique_temp_dir("restart");
        let config = KernelCacheConfig {
            dir: Some(dir.clone()),
            ..KernelCacheConfig::default()
        };
        let program = mha_forward(
            AttentionShape::decoding(4, 8, 512, 64),
            AttentionConfig::default(),
        )
        .unwrap();
        let first =
            CompileService::with_config(GpuArch::h100(), CompilerOptions::new(), config.clone());
        let cold = first.compile(&program).unwrap();
        assert_eq!(cold.served_from, ServedFrom::Synthesized);
        drop(first);

        // A fresh service (fresh memory front) over the same directory
        // serves the artifact from disk, bit-identically.
        let second = CompileService::with_config(GpuArch::h100(), CompilerOptions::new(), config);
        let warm = second.compile(&program).unwrap();
        assert_eq!(warm.served_from, ServedFrom::Disk);
        assert_eq!(*warm.artifact, *cold.artifact);
        assert_eq!(second.stats().syntheses, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quant_and_grouped_families_serve_through_the_cache_bit_identically() {
        use hexcute_kernels::grouped_gemm::{grouped_gemm, GroupedGemmConfig, GroupedGemmShape};
        use hexcute_kernels::quant_gemm::{w4a16_gemm, QuantGemmConfig, QuantGemmShape};

        let dir = unique_temp_dir("families");
        let config = KernelCacheConfig {
            dir: Some(dir.clone()),
            ..KernelCacheConfig::default()
        };
        let quant = w4a16_gemm(
            QuantGemmShape::new(16, 128, 256, 64),
            QuantGemmConfig::default(),
        )
        .unwrap();
        let grouped = grouped_gemm(
            &GroupedGemmShape::uniform(8, 16, 256, 512),
            GroupedGemmConfig::default(),
        )
        .unwrap();

        let service =
            CompileService::with_config(GpuArch::h100(), CompilerOptions::new(), config.clone());
        // A batch over both families: two syntheses, duplicates coalesce.
        let responses = service.compile_batch(vec![
            quant.clone(),
            grouped.clone(),
            quant.clone(),
            grouped.clone(),
        ]);
        let artifacts: Vec<_> = responses.into_iter().map(|r| r.unwrap().artifact).collect();
        assert_eq!(service.stats().syntheses, 2);
        assert_eq!(*artifacts[0], *artifacts[2]);
        assert_eq!(*artifacts[1], *artifacts[3]);
        assert_eq!(artifacts[0].kernel, "w4a16_gemm");
        assert_eq!(artifacts[1].kernel, "grouped_gemm");
        // The artifacts carry the new pipeline features end to end.
        assert!(
            artifacts[0].cuda.contains("dequant"),
            "{}",
            artifacts[0].cuda
        );
        assert!(artifacts[0]
            .lowered
            .iter()
            .any(|line| line.contains("unpack")));

        // Warm memory hits are bit-identical.
        let warm = service.compile(&quant).unwrap();
        assert_eq!(warm.served_from, ServedFrom::Memory);
        assert_eq!(*warm.artifact, *artifacts[0]);

        // A restart (fresh memory front, same directory) serves both
        // families from disk, bit-identically, with zero syntheses.
        let restarted =
            CompileService::with_config(GpuArch::h100(), CompilerOptions::new(), config);
        let disk_quant = restarted.compile(&quant).unwrap();
        let disk_grouped = restarted.compile(&grouped).unwrap();
        assert_eq!(disk_quant.served_from, ServedFrom::Disk);
        assert_eq!(disk_grouped.served_from, ServedFrom::Disk);
        assert_eq!(*disk_quant.artifact, *artifacts[0]);
        assert_eq!(*disk_grouped.artifact, *artifacts[1]);
        assert_eq!(restarted.stats().syntheses, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn synthesis_errors_are_not_cached() {
        // An empty program fails synthesis; the failure must propagate and a
        // subsequent request must retry (not serve a cached error).
        let service = CompileService::new(GpuArch::a100());
        let program = KernelBuilder::new("empty", 128).build();
        if let Ok(program) = program {
            let first = service.compile(&program);
            let second = service.compile(&program);
            match (first, second) {
                (Err(_), Err(_)) => {
                    assert_eq!(service.stats().syntheses, 2, "errors must not be cached");
                }
                (Ok(_), Ok(_)) => {
                    assert_eq!(service.stats().syntheses, 1);
                }
                other => panic!("inconsistent results across identical requests: {other:?}"),
            }
        }
    }
}
