//! A batched compile service over the persistent kernel-artifact cache.
//!
//! The serving loop (see [`crate::decode_latency_ms_with`]) issues the *same* few dozen
//! kernel compilations over and over — per decode step, per process start,
//! per replica. [`CompileService`] turns the PR 1–3 fast search into a
//! servable subsystem:
//!
//! * **Cache first.** Every request is keyed by the stable artifact
//!   fingerprint and answered from the [`KernelCache`] (memory, then disk)
//!   when possible.
//! * **Coalescing.** Concurrent requests for the *same* fingerprint join a
//!   single in-flight synthesis instead of each running the search: the
//!   first requester synthesizes, the rest block on its completion and
//!   share the resulting artifact.
//! * **Batching.** [`CompileService::compile_batch`] fans *distinct*
//!   requests out across the PR 3 persistent worker pool; duplicates within
//!   a batch deduplicate through the coalescing path.
//! * **Admission control & fault tolerance** (PR 6). A [`ServiceConfig`]
//!   bounds concurrent syntheses plus a pending queue (full queue → typed
//!   load shedding via [`CompileError::Overloaded`]), enforces per-request
//!   deadlines while queued, while coalesced *and* — since PR 8 — against
//!   the in-flight synthesis itself
//!   ([`CompileError::DeadlineExceeded`]), and retries transient failures —
//!   a panicked synthesis wakes every coalesced waiter with a retryable
//!   [`CompileError::Panicked`] instead of deadlocking them — with
//!   exponential backoff and deterministic seeded jitter. Cache hits bypass
//!   admission entirely: backpressure protects the expensive synthesis
//!   path, never the cheap one. See `docs/ROBUSTNESS.md` for the full
//!   degradation ladder.
//! * **Cooperative cancellation & supervision** (PR 8). Every synthesis
//!   carries a [`CancelToken`](hexcute_core::CancelToken) that the search
//!   walks poll at row granularity, so a deadline that expires *mid-
//!   synthesis* now aborts the in-flight search — freeing its admission
//!   slot and broadcasting a typed [`CompileError::DeadlineExceeded`] to
//!   every coalesced waiter — instead of running to completion. A lazily
//!   spawned watchdog thread (`HEXCUTE_WATCHDOG_MS`) trips runaway
//!   compiles with [`CompileError::SynthesisTimeout`], and
//!   [`CompileService::shutdown`] drains the admission queue and cancels
//!   all in-flight work with typed [`CompileError::Cancelled`] errors.
//!   Wall-clock cancellation yields typed errors only: a cancelled
//!   synthesis never produces a partial artifact and never touches the
//!   cache.
//!
//! ```
//! use hexcute_arch::{DType, GpuArch};
//! use hexcute_e2e::{CompileService, ServedFrom};
//! use hexcute_ir::KernelBuilder;
//! use hexcute_layout::Layout;
//!
//! let mut kb = KernelBuilder::new("served_copy", 128);
//! let x = kb.global_view("x", DType::F32, Layout::row_major(&[64, 64]), &[64, 64]);
//! let y = kb.global_view("y", DType::F32, Layout::row_major(&[64, 64]), &[64, 64]);
//! let r = kb.register_tensor("r", DType::F32, &[64, 64]);
//! kb.copy(x, r);
//! kb.copy(r, y);
//! let program = kb.build()?;
//!
//! let service = CompileService::new(GpuArch::a100());
//! let cold = service.compile(&program)?;
//! assert_eq!(cold.served_from, ServedFrom::Synthesized);
//! let warm = service.compile(&program)?;
//! assert_eq!(warm.served_from, ServedFrom::Memory);
//! assert_eq!(*cold.artifact, *warm.artifact);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

use hexcute_arch::GpuArch;
use hexcute_core::{
    faults, ArtifactSource, CancelReason, CancelToken, CompileError, Compiler, CompilerOptions,
    FaultInjector, FaultKind, KernelArtifact, KernelCache, KernelCacheConfig, KernelCacheStats,
};
use hexcute_ir::Program;

/// How a [`CompileResponse`] was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// The artifact cache's in-memory front.
    Memory,
    /// The artifact cache's disk store.
    Disk,
    /// This request ran the synthesis itself.
    Synthesized,
    /// This request joined another request's in-flight synthesis.
    Coalesced,
}

impl fmt::Display for ServedFrom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ServedFrom::Memory => "memory",
            ServedFrom::Disk => "disk",
            ServedFrom::Synthesized => "synthesized",
            ServedFrom::Coalesced => "coalesced",
        })
    }
}

impl From<ArtifactSource> for ServedFrom {
    fn from(source: ArtifactSource) -> Self {
        match source {
            ArtifactSource::Memory => ServedFrom::Memory,
            ArtifactSource::Disk => ServedFrom::Disk,
            ArtifactSource::Synthesized => ServedFrom::Synthesized,
        }
    }
}

/// One served compilation: the (shared) artifact plus how it was obtained.
#[derive(Debug, Clone)]
pub struct CompileResponse {
    /// The compiled kernel artifact.
    pub artifact: Arc<KernelArtifact>,
    /// Where the artifact came from.
    pub served_from: ServedFrom,
}

impl CompileResponse {
    /// The estimated kernel latency in microseconds.
    pub fn latency_us(&self) -> f64 {
        self.artifact.latency_us()
    }
}

/// Admission, deadline and retry policy of a [`CompileService`].
///
/// The defaults are fully permissive — unbounded concurrency, no deadline —
/// so a service constructed without an explicit config behaves exactly like
/// the pre-admission-control service; production deployments opt in via
/// [`ServiceConfig::from_env`] (`HEXCUTE_SERVICE_*`) or explicit fields.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum syntheses running at once. `0` (the default) means
    /// unbounded: no admission accounting at all.
    pub max_concurrent: usize,
    /// Requests allowed to wait for an admission slot beyond
    /// `max_concurrent`; arrivals past this are shed with
    /// [`CompileError::Overloaded`]. Ignored while `max_concurrent` is 0.
    pub queue_capacity: usize,
    /// Per-request deadline, enforced while queued for admission, while
    /// waiting on a coalesced in-flight synthesis, *and* — since PR 8 —
    /// against the in-flight synthesis itself, which is cooperatively
    /// cancelled when the deadline passes. `None` disables it.
    pub deadline: Option<Duration>,
    /// Wall-clock watchdog for one synthesis: a search still running this
    /// long after it started is cancelled with
    /// [`CompileError::SynthesisTimeout`]. Unlike `deadline` (which counts
    /// from request arrival, queueing included), the watchdog counts from
    /// synthesis start and so catches runaway searches specifically.
    /// `None` disables it.
    pub watchdog: Option<Duration>,
    /// Retries of a *transient* failure (a panicked synthesis) before the
    /// error is returned. `0` disables retrying.
    pub max_retries: usize,
    /// Base of the exponential retry backoff: retry `n` sleeps
    /// `retry_backoff * 2^(n-1)` plus jitter in `[0, retry_backoff)`.
    pub retry_backoff: Duration,
    /// Seed of the deterministic jitter stream (replayable chaos runs).
    pub seed: u64,
    /// Fault injector threaded through the service and its cache. Defaults
    /// to the process-global `HEXCUTE_FAULTS` injector ([`faults::global`]),
    /// i.e. `None` in production.
    pub faults: Option<Arc<FaultInjector>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_concurrent: 0,
            queue_capacity: 64,
            deadline: None,
            watchdog: None,
            max_retries: 2,
            retry_backoff: Duration::from_millis(2),
            seed: 0,
            faults: faults::global().cloned(),
        }
    }
}

impl ServiceConfig {
    /// Reads the policy from the environment:
    ///
    /// | Variable | Meaning | Default |
    /// |---|---|---|
    /// | `HEXCUTE_SERVICE_MAX_CONCURRENT` | concurrent synthesis bound (`0` = unbounded) | 0 |
    /// | `HEXCUTE_SERVICE_QUEUE_CAPACITY` | pending-queue capacity before shedding | 64 |
    /// | `HEXCUTE_SERVICE_DEADLINE_MS` | per-request deadline in milliseconds (`0` = none) | unset → none |
    /// | `HEXCUTE_WATCHDOG_MS` | per-synthesis watchdog in milliseconds (`0` = none) | unset → none |
    /// | `HEXCUTE_SERVICE_RETRIES` | transient-failure retries | 2 |
    /// | `HEXCUTE_SERVICE_RETRY_BACKOFF_MS` | backoff base in milliseconds | 2 |
    /// | `HEXCUTE_SERVICE_SEED` | jitter seed | 0 |
    ///
    /// Unparsable values fall back to the defaults.
    pub fn from_env() -> Self {
        let defaults = Self::default();
        let parse = |name: &str, default: usize| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(default)
        };
        ServiceConfig {
            max_concurrent: parse("HEXCUTE_SERVICE_MAX_CONCURRENT", defaults.max_concurrent),
            queue_capacity: parse("HEXCUTE_SERVICE_QUEUE_CAPACITY", defaults.queue_capacity),
            deadline: std::env::var("HEXCUTE_SERVICE_DEADLINE_MS")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .filter(|&ms| ms > 0)
                .map(Duration::from_millis),
            watchdog: std::env::var("HEXCUTE_WATCHDOG_MS")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .filter(|&ms| ms > 0)
                .map(Duration::from_millis),
            max_retries: parse("HEXCUTE_SERVICE_RETRIES", defaults.max_retries),
            retry_backoff: std::env::var("HEXCUTE_SERVICE_RETRY_BACKOFF_MS")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .map(Duration::from_millis)
                .unwrap_or(defaults.retry_backoff),
            seed: std::env::var("HEXCUTE_SERVICE_SEED")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .unwrap_or(defaults.seed),
            faults: defaults.faults,
        }
    }
}

// ---------------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct AdmissionState {
    /// Synthesis slots currently held.
    active: usize,
    /// Requests parked waiting for a slot.
    waiting: usize,
}

/// A bounded-concurrency gate with a bounded wait queue: the synchronous
/// analogue of an async semaphore + listen queue. Cache hits never touch it;
/// only requests about to synthesize (or join a synthesis) pass through.
#[derive(Debug)]
struct Admission {
    max_concurrent: usize,
    queue_capacity: usize,
    state: Mutex<AdmissionState>,
    available: Condvar,
    max_queue_depth: AtomicU64,
    /// Set by [`CompileService::shutdown`]: parked waiters drain out with a
    /// typed shutdown cancellation instead of waiting for a slot that will
    /// never be used.
    shutdown: AtomicBool,
}

/// RAII admission slot; dropping it releases the slot and wakes one waiter.
struct AdmissionPermit<'a> {
    admission: Option<&'a Admission>,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        if let Some(admission) = self.admission.take() {
            let mut state = admission.state.lock().unwrap_or_else(|p| p.into_inner());
            state.active = state.active.saturating_sub(1);
            drop(state);
            admission.available.notify_one();
        }
    }
}

impl Admission {
    fn new(max_concurrent: usize, queue_capacity: usize) -> Self {
        Admission {
            max_concurrent,
            queue_capacity,
            state: Mutex::new(AdmissionState {
                active: 0,
                waiting: 0,
            }),
            available: Condvar::new(),
            max_queue_depth: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Drains the wait queue: every parked waiter wakes and exits with a
    /// typed shutdown cancellation.
    fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Take (and drop) the state lock before notifying: a waiter between
        // its shutdown check and its park holds the lock, so this serializes
        // against it and the notification cannot be lost.
        drop(self.state.lock().unwrap_or_else(|p| p.into_inner()));
        self.available.notify_all();
    }

    /// Acquires a synthesis slot, waiting (up to `deadline`) in the bounded
    /// queue when all slots are busy.
    ///
    /// # Errors
    ///
    /// [`CompileError::Overloaded`] when the wait queue is already full,
    /// [`CompileError::DeadlineExceeded`] when the deadline passes first
    /// and [`CompileError::Cancelled`] (shutdown) when the service shuts
    /// down while this request is parked.
    fn acquire(
        &self,
        start: Instant,
        deadline: Option<Instant>,
    ) -> Result<AdmissionPermit<'_>, CompileError> {
        if self.max_concurrent == 0 {
            return Ok(AdmissionPermit { admission: None });
        }
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if state.active >= self.max_concurrent {
            if state.waiting >= self.queue_capacity {
                return Err(CompileError::Overloaded {
                    queued: state.waiting,
                    capacity: self.queue_capacity,
                });
            }
            state.waiting += 1;
            self.max_queue_depth
                .fetch_max(state.waiting as u64, Ordering::Relaxed);
            while state.active >= self.max_concurrent {
                if self.shutdown.load(Ordering::SeqCst) {
                    state.waiting -= 1;
                    return Err(CompileError::Cancelled {
                        reason: CancelReason::Shutdown,
                    });
                }
                match deadline {
                    None => {
                        state = self
                            .available
                            .wait(state)
                            .unwrap_or_else(|p| p.into_inner());
                    }
                    Some(dl) => {
                        let now = Instant::now();
                        if now >= dl {
                            state.waiting -= 1;
                            return Err(CompileError::DeadlineExceeded {
                                elapsed: start.elapsed(),
                            });
                        }
                        let (s, _) = self
                            .available
                            .wait_timeout(state, dl - now)
                            .unwrap_or_else(|p| p.into_inner());
                        state = s;
                    }
                }
            }
            state.waiting -= 1;
        }
        state.active += 1;
        Ok(AdmissionPermit {
            admission: Some(self),
        })
    }

    /// Requests currently parked waiting for a slot.
    fn queue_depth(&self) -> usize {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).waiting
    }
}

/// Counters describing a [`CompileService`]'s behaviour. Snapshot via
/// [`CompileService::stats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Requests served (including batch members).
    pub requests: u64,
    /// Requests that joined another request's in-flight synthesis.
    pub coalesced: u64,
    /// Syntheses actually executed.
    pub syntheses: u64,
    /// [`CompileService::compile_batch`] invocations.
    pub batches: u64,
    /// Requests shed because the admission queue was full.
    pub shed: u64,
    /// Requests that gave up on their deadline (queued or coalesced).
    pub deadline_exceeded: u64,
    /// Transient-failure retries performed.
    pub retries: u64,
    /// Syntheses that panicked (caught, turned into
    /// [`CompileError::Panicked`] and broadcast to coalesced waiters).
    pub synth_panics: u64,
    /// In-flight syntheses aborted by cooperative cancellation (deadline,
    /// watchdog or shutdown). Each freed its admission slot early and
    /// returned a typed error; none produced or cached an artifact.
    pub cancelled: u64,
    /// Times the watchdog thread tripped a runaway synthesis
    /// ([`CompileError::SynthesisTimeout`]).
    pub watchdog_trips: u64,
    /// Requests drained with a typed shutdown cancellation — parked
    /// admission waiters woken by [`CompileService::shutdown`], requests
    /// arriving after it, and in-flight syntheses it cancelled.
    pub shutdown_drained: u64,
    /// Deepest the admission queue has ever been.
    pub max_queue_depth: u64,
    /// Requests currently parked in the admission queue.
    pub queue_depth: usize,
    /// The artifact cache's counters.
    pub cache: KernelCacheStats,
}

impl fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests ({} coalesced, {} batches), {} syntheses, \
             {} shed, {} deadline-exceeded, {} retries, {} synth-panics, \
             {} cancelled ({} watchdog trips, {} shutdown-drained), \
             queue {} (max {}); artifact cache: {}",
            self.requests,
            self.coalesced,
            self.batches,
            self.syntheses,
            self.shed,
            self.deadline_exceeded,
            self.retries,
            self.synth_panics,
            self.cancelled,
            self.watchdog_trips,
            self.shutdown_drained,
            self.queue_depth,
            self.max_queue_depth,
            self.cache
        )
    }
}

/// The result slot of one in-flight synthesis.
enum InflightState {
    /// Synthesis still running.
    Pending,
    /// Finished; joiners clone this result.
    Done(Result<Arc<KernelArtifact>, CompileError>),
    /// The claiming request unwound without completing; joiners retry.
    Abandoned,
}

struct Inflight {
    state: Mutex<InflightState>,
    ready: Condvar,
}

impl fmt::Debug for Inflight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Inflight").finish_non_exhaustive()
    }
}

impl Inflight {
    fn new() -> Self {
        Inflight {
            state: Mutex::new(InflightState::Pending),
            ready: Condvar::new(),
        }
    }

    fn complete(&self, result: Result<Arc<KernelArtifact>, CompileError>) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        *state = InflightState::Done(result);
        self.ready.notify_all();
    }

    fn abandon(&self) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if matches!(*state, InflightState::Pending) {
            *state = InflightState::Abandoned;
        }
        self.ready.notify_all();
    }

    /// Blocks until the synthesis finishes or `deadline` passes.
    fn wait(&self, deadline: Option<Instant>) -> WaitOutcome {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            match &*state {
                InflightState::Pending => match deadline {
                    None => {
                        state = self.ready.wait(state).unwrap_or_else(|p| p.into_inner());
                    }
                    Some(dl) => {
                        let now = Instant::now();
                        if now >= dl {
                            return WaitOutcome::TimedOut;
                        }
                        let (s, _) = self
                            .ready
                            .wait_timeout(state, dl - now)
                            .unwrap_or_else(|p| p.into_inner());
                        state = s;
                    }
                },
                InflightState::Done(result) => return WaitOutcome::Done(result.clone()),
                InflightState::Abandoned => return WaitOutcome::Abandoned,
            }
        }
    }
}

/// What a coalesced waiter observed.
enum WaitOutcome {
    /// The claimant finished; the shared result (which may be a retryable
    /// [`CompileError::Panicked`]) is cloned to every waiter.
    Done(Result<Arc<KernelArtifact>, CompileError>),
    /// The claimant unwound without completing (defensive backstop — a
    /// panicked synthesis normally completes with `Panicked`): retry.
    Abandoned,
    /// The waiter's deadline passed first.
    TimedOut,
}

/// Removes the in-flight entry (and wakes joiners) even if the claiming
/// request unwinds mid-synthesis, so joiners never block forever.
struct ClaimGuard<'a> {
    service: &'a CompileService,
    fingerprint: u64,
    entry: Arc<Inflight>,
    completed: bool,
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.entry.abandon();
        }
        self.service
            .inflight
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&self.fingerprint);
    }
}

// ---------------------------------------------------------------------------
// Watchdog supervision.
// ---------------------------------------------------------------------------

/// One in-flight synthesis under supervision.
#[derive(Debug)]
struct Watch {
    token: CancelToken,
    /// When the synthesis started (watchdog budget counts from here).
    synth_start: Instant,
    /// The owning request's absolute deadline, if any.
    deadline: Option<Instant>,
}

/// Shared state between the service and its (lazily spawned) watchdog
/// thread: the registry of in-flight syntheses and the trip counter.
#[derive(Debug)]
struct Supervisor {
    registry: Mutex<HashMap<u64, Watch>>,
    /// Per-synthesis wall-clock budget ([`ServiceConfig::watchdog`]).
    watchdog: Option<Duration>,
    watchdog_trips: AtomicU64,
    thread_spawned: AtomicBool,
}

/// How often the watchdog thread scans the registry. Cancellation latency
/// is bounded by this scan interval plus the search's poll granularity.
const SUPERVISOR_SCAN_INTERVAL: Duration = Duration::from_millis(1);

impl Supervisor {
    fn new(watchdog: Option<Duration>) -> Self {
        Supervisor {
            registry: Mutex::new(HashMap::new()),
            watchdog,
            watchdog_trips: AtomicU64::new(0),
            thread_spawned: AtomicBool::new(false),
        }
    }

    /// Whether any supervised trigger is configured — if not, registered
    /// watches only serve the shutdown path and no thread is needed.
    fn needs_thread(&self, deadline: Option<Instant>) -> bool {
        deadline.is_some() || self.watchdog.is_some()
    }

    /// Registers `fingerprint`'s synthesis and lazily spawns the scanner
    /// thread the first time a watch actually needs one. The thread holds a
    /// [`Weak`] reference and exits when the service is dropped.
    fn register(self: &Arc<Self>, fingerprint: u64, watch: Watch) {
        let needs_thread = self.needs_thread(watch.deadline);
        self.registry
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(fingerprint, watch);
        if needs_thread && !self.thread_spawned.swap(true, Ordering::SeqCst) {
            let weak: Weak<Supervisor> = Arc::downgrade(self);
            std::thread::Builder::new()
                .name("hexcute-watchdog".into())
                .spawn(move || Supervisor::run(weak))
                .expect("spawning the watchdog thread");
        }
    }

    fn unregister(&self, fingerprint: u64) {
        self.registry
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&fingerprint);
    }

    /// The scanner loop: every [`SUPERVISOR_SCAN_INTERVAL`], trip tokens
    /// whose deadline has passed or whose synthesis has outlived the
    /// watchdog budget. First cancel wins, so a request whose deadline and
    /// the watchdog race reports one coherent reason.
    fn run(weak: Weak<Supervisor>) {
        loop {
            let Some(supervisor) = weak.upgrade() else {
                return;
            };
            let now = Instant::now();
            {
                let registry = supervisor
                    .registry
                    .lock()
                    .unwrap_or_else(|p| p.into_inner());
                for watch in registry.values() {
                    if watch.deadline.is_some_and(|dl| now >= dl) {
                        watch.token.cancel(CancelReason::Deadline);
                    }
                    if let Some(budget) = supervisor.watchdog {
                        if now.duration_since(watch.synth_start) >= budget
                            && watch.token.cancel(CancelReason::Watchdog)
                        {
                            supervisor.watchdog_trips.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            drop(supervisor);
            std::thread::sleep(SUPERVISOR_SCAN_INTERVAL);
        }
    }

    /// Cancels every registered in-flight synthesis with the shutdown
    /// reason (the service is draining).
    fn cancel_all_for_shutdown(&self) {
        let registry = self.registry.lock().unwrap_or_else(|p| p.into_inner());
        for watch in registry.values() {
            watch.token.cancel(CancelReason::Shutdown);
        }
    }
}

/// A compile front-end for one target architecture: an artifact cache, a
/// request-coalescing layer and pool-backed batch compilation. The service
/// is `Sync` — one instance serves concurrent requests from many threads.
/// See the [module docs](self) for the serving rationale and an example.
#[derive(Debug)]
pub struct CompileService {
    compiler: Compiler,
    cache: KernelCache,
    config: ServiceConfig,
    admission: Admission,
    inflight: Mutex<HashMap<u64, Arc<Inflight>>>,
    requests: AtomicU64,
    coalesced: AtomicU64,
    syntheses: AtomicU64,
    batches: AtomicU64,
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    retries: AtomicU64,
    synth_panics: AtomicU64,
    cancelled: AtomicU64,
    shutdown_drained: AtomicU64,
    jitter_ticket: AtomicU64,
    supervisor: Arc<Supervisor>,
    shutdown: AtomicBool,
    /// Cancel-to-worker-free latencies: how long each cancelled synthesis
    /// held its admission slot past the cancel, sampled as the claimant
    /// releases it.
    cancel_free: Mutex<Vec<Duration>>,
}

impl CompileService {
    /// A service for `arch` with default compiler options and a
    /// **memory-only** cache (no files are touched). Use
    /// [`CompileService::with_config`] or [`CompileService::from_env`] for a
    /// persistent disk store.
    pub fn new(arch: GpuArch) -> Self {
        Self::with_config(arch, CompilerOptions::new(), KernelCacheConfig::default())
    }

    /// A service with explicit compiler options and cache configuration,
    /// and the default (fully permissive) admission policy.
    pub fn with_config(
        arch: GpuArch,
        options: CompilerOptions,
        cache_config: KernelCacheConfig,
    ) -> Self {
        Self::with_service_config(arch, options, cache_config, ServiceConfig::default())
    }

    /// A service with explicit compiler options, cache configuration and
    /// admission/deadline/retry policy. The policy's fault injector (if
    /// any) is threaded into the artifact cache too, so one schedule drives
    /// the whole serving stack.
    pub fn with_service_config(
        arch: GpuArch,
        options: CompilerOptions,
        cache_config: KernelCacheConfig,
        config: ServiceConfig,
    ) -> Self {
        faults::install_global_pool_hook();
        faults::install_global_synth_hook();
        let cache = KernelCache::with_faults(cache_config, config.faults.clone());
        let admission = Admission::new(config.max_concurrent, config.queue_capacity);
        let supervisor = Arc::new(Supervisor::new(config.watchdog));
        CompileService {
            compiler: Compiler::with_options(arch, options),
            cache,
            config,
            admission,
            inflight: Mutex::new(HashMap::new()),
            requests: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            syntheses: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            synth_panics: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            shutdown_drained: AtomicU64::new(0),
            jitter_ticket: AtomicU64::new(0),
            supervisor,
            shutdown: AtomicBool::new(false),
            cancel_free: Mutex::new(Vec::new()),
        }
    }

    /// A service whose cache reads the `HEXCUTE_CACHE_*` environment
    /// variables and whose admission policy reads `HEXCUTE_SERVICE_*` (see
    /// [`KernelCacheConfig::from_env`] and [`ServiceConfig::from_env`]).
    pub fn from_env(arch: GpuArch) -> Self {
        Self::with_service_config(
            arch,
            CompilerOptions::new(),
            KernelCacheConfig::from_env(),
            ServiceConfig::from_env(),
        )
    }

    /// The active admission/deadline/retry policy.
    pub fn service_config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The target architecture.
    pub fn arch(&self) -> &GpuArch {
        self.compiler.arch()
    }

    /// The underlying artifact cache.
    pub fn cache(&self) -> &KernelCache {
        &self.cache
    }

    /// Serves one compilation: answered from the cache when possible,
    /// coalesced onto an in-flight synthesis of the same fingerprint when
    /// one exists, synthesized (and stored) otherwise — under the service's
    /// admission, deadline and retry policy.
    ///
    /// # Errors
    ///
    /// [`CompileError::Overloaded`] when the admission queue is full,
    /// [`CompileError::DeadlineExceeded`] when the configured deadline
    /// passes while queued or coalesced, [`CompileError::Panicked`] when a
    /// synthesis crashed and the retry budget is exhausted, and the
    /// underlying synthesis error otherwise. Errors are shared by every
    /// coalesced requester of the same fingerprint and are never cached — a
    /// later request retries.
    pub fn compile(&self, program: &Program) -> Result<CompileResponse, CompileError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if self.shutdown.load(Ordering::SeqCst) {
            self.shutdown_drained.fetch_add(1, Ordering::Relaxed);
            return Err(CompileError::Cancelled {
                reason: CancelReason::Shutdown,
            });
        }
        let fingerprint = self.compiler.artifact_fingerprint(program);
        let start = Instant::now();
        let deadline = self.config.deadline.map(|d| start + d);
        let mut attempt = 0usize;
        let result = loop {
            match self.compile_attempt(program, fingerprint, start, deadline) {
                Err(e) if e.is_transient() && attempt < self.config.max_retries => {
                    attempt += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    let backoff = self.backoff(attempt);
                    if let Some(dl) = deadline {
                        if Instant::now() + backoff >= dl {
                            break Err(CompileError::DeadlineExceeded {
                                elapsed: start.elapsed(),
                            });
                        }
                    }
                    std::thread::sleep(backoff);
                }
                other => break other,
            }
        };
        match &result {
            Err(CompileError::Overloaded { .. }) => {
                self.shed.fetch_add(1, Ordering::Relaxed);
            }
            Err(CompileError::DeadlineExceeded { .. }) => {
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            Err(CompileError::Cancelled {
                reason: CancelReason::Shutdown,
            }) => {
                self.shutdown_drained.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        result
    }

    /// Exponential backoff with deterministic seeded jitter: retry `n`
    /// sleeps `base * 2^(n-1) + jitter`, `jitter ∈ [0, base)` drawn from a
    /// SplitMix64 stream over (seed, ticket) so chaos runs replay exactly.
    fn backoff(&self, attempt: usize) -> Duration {
        let base = self.config.retry_backoff;
        if base.is_zero() {
            return Duration::ZERO;
        }
        let exp = base.saturating_mul(1u32 << (attempt - 1).min(16) as u32);
        let ticket = self.jitter_ticket.fetch_add(1, Ordering::Relaxed);
        let mut z = self
            .config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(ticket)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let jitter = Duration::from_nanos(z % base.as_nanos().max(1) as u64);
        exp + jitter
    }

    /// One admission-gated attempt at serving `fingerprint`.
    fn compile_attempt(
        &self,
        program: &Program,
        fingerprint: u64,
        start: Instant,
        deadline: Option<Instant>,
    ) -> Result<CompileResponse, CompileError> {
        loop {
            if let Some((artifact, source)) = self.cache.get(fingerprint) {
                return Ok(CompileResponse {
                    artifact,
                    served_from: source.into(),
                });
            }
            if deadline.is_some_and(|dl| Instant::now() >= dl) {
                return Err(CompileError::DeadlineExceeded {
                    elapsed: start.elapsed(),
                });
            }
            // Admission bounds the synthesis path only; the cache hit above
            // never queues.
            let permit = self.admission.acquire(start, deadline)?;
            let claim = {
                let mut inflight = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
                // Re-check under the map lock: a claimant inserts into the
                // cache *before* retiring its in-flight entry, so a request
                // arriving in between must not start a second synthesis.
                if let Some((artifact, source)) = self.cache.get(fingerprint) {
                    return Ok(CompileResponse {
                        artifact,
                        served_from: source.into(),
                    });
                }
                match inflight.get(&fingerprint) {
                    Some(entry) => Err(entry.clone()),
                    None => {
                        let entry = Arc::new(Inflight::new());
                        inflight.insert(fingerprint, entry.clone());
                        Ok(entry)
                    }
                }
            };
            match claim {
                Err(entry) => {
                    // A coalesced waiter consumes no synthesis slot: release
                    // it before parking so admission capacity tracks actual
                    // work, not waiters.
                    drop(permit);
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    match entry.wait(deadline) {
                        WaitOutcome::Done(result) => {
                            return result.map(|artifact| CompileResponse {
                                artifact,
                                served_from: ServedFrom::Coalesced,
                            });
                        }
                        // The claimant unwound without a result: retry.
                        WaitOutcome::Abandoned => continue,
                        WaitOutcome::TimedOut => {
                            return Err(CompileError::DeadlineExceeded {
                                elapsed: start.elapsed(),
                            });
                        }
                    }
                }
                Ok(entry) => {
                    let mut guard = ClaimGuard {
                        service: self,
                        fingerprint,
                        entry,
                        completed: false,
                    };
                    self.syntheses.fetch_add(1, Ordering::Relaxed);
                    // Put the synthesis under supervision: its token is
                    // tripped by the watchdog thread (deadline/runaway) or
                    // by `shutdown`, and the search walks poll it at row
                    // granularity.
                    let token = CancelToken::new();
                    let synth_start = Instant::now();
                    self.supervisor.register(
                        fingerprint,
                        Watch {
                            token: token.clone(),
                            synth_start,
                            deadline,
                        },
                    );
                    // A shutdown racing this registration may have swept
                    // the registry already; re-check the flag so the new
                    // synthesis is cancelled either way.
                    if self.shutdown.load(Ordering::SeqCst) {
                        token.cancel(CancelReason::Shutdown);
                    }
                    // A panicking synthesis (worker-job crash, injected
                    // fault) must not strand coalesced waiters: catch the
                    // unwind and broadcast a retryable error through the
                    // normal completion path. The `ClaimGuard` abandon
                    // remains as a backstop for panics outside this scope.
                    let result = panic::catch_unwind(AssertUnwindSafe(|| {
                        if let Some(f) = &self.config.faults {
                            if f.should(FaultKind::SynthPanic) {
                                panic!("injected: synthesis panic");
                            }
                        }
                        self.compiler
                            .compile_artifact_cancellable(program, Some(&token))
                            .map(Arc::new)
                    }))
                    .unwrap_or_else(|payload| {
                        self.synth_panics.fetch_add(1, Ordering::Relaxed);
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        Err(CompileError::Panicked(msg))
                    });
                    self.supervisor.unregister(fingerprint);
                    // Map the raw cancellation onto the trigger's typed
                    // error: a tripped deadline reads as the deadline
                    // error waiters already understand, a watchdog trip as
                    // a synthesis timeout; shutdown keeps its reason.
                    let result = result.map_err(|error| match error {
                        CompileError::Cancelled {
                            reason: CancelReason::Deadline,
                        } => CompileError::DeadlineExceeded {
                            elapsed: start.elapsed(),
                        },
                        CompileError::Cancelled {
                            reason: CancelReason::Watchdog,
                        } => CompileError::SynthesisTimeout {
                            elapsed: synth_start.elapsed(),
                        },
                        other => other,
                    });
                    // A cancelled synthesis yields a typed error only —
                    // the `Err` below never reaches `cache.insert`, so a
                    // cancel can never alter or cache a result.
                    if let Ok(artifact) = &result {
                        self.cache.insert(artifact.clone());
                    }
                    guard.entry.complete(result.clone());
                    guard.completed = true;
                    drop(guard);
                    if matches!(
                        result,
                        Err(CompileError::Cancelled { .. }
                            | CompileError::DeadlineExceeded { .. }
                            | CompileError::SynthesisTimeout { .. })
                    ) {
                        self.cancelled.fetch_add(1, Ordering::Relaxed);
                    }
                    // Sample cancel-to-worker-free latency at the moment
                    // the slot is released (the permit drops next).
                    if let Some(latency) = token.since_cancelled() {
                        self.cancel_free
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .push(latency);
                    }
                    drop(permit);
                    return result.map(|artifact| CompileResponse {
                        artifact,
                        served_from: ServedFrom::Synthesized,
                    });
                }
            }
        }
    }

    /// Serves a batch of compilations concurrently on the persistent worker
    /// pool. Distinct fingerprints synthesize in parallel; duplicate
    /// fingerprints within the batch coalesce onto one synthesis. Results
    /// are returned in request order.
    pub fn compile_batch(
        &self,
        programs: Vec<Program>,
    ) -> Vec<Result<CompileResponse, CompileError>> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        hexcute_parallel::par_map(programs, |program| self.compile(&program))
    }

    /// Gracefully shuts the service down: new requests are rejected with a
    /// typed shutdown cancellation, parked admission waiters drain out with
    /// the same error, every in-flight synthesis is cooperatively
    /// cancelled, and the call waits (bounded) for the in-flight map to
    /// empty so callers can observe "no leaked slots" deterministically.
    /// Idempotent — later calls return immediately.
    pub fn shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.supervisor.cancel_all_for_shutdown();
        self.admission.shutdown();
        // Bounded drain: in-flight claimants poll their tokens at row
        // granularity, so they unwind within a poll interval each. The cap
        // only guards against a wedged (non-cooperative) synthesis.
        let drain_deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < drain_deadline {
            let drained = self
                .inflight
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .is_empty();
            if drained {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Whether [`CompileService::shutdown`] has begun.
    pub fn is_shut_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Cancel-to-worker-free latencies observed so far: for each cancelled
    /// synthesis, how long it held its admission slot after its token
    /// tripped (cancel-poll granularity plus unwind time). The robustness
    /// bench asserts a p99 bound over these.
    pub fn cancel_to_free_latencies(&self) -> Vec<Duration> {
        self.cancel_free
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// A snapshot of the service and cache counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.requests.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            syntheses: self.syntheses.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            synth_panics: self.synth_panics.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            watchdog_trips: self.supervisor.watchdog_trips.load(Ordering::Relaxed),
            shutdown_drained: self.shutdown_drained.load(Ordering::Relaxed),
            max_queue_depth: self.admission.max_queue_depth.load(Ordering::Relaxed),
            queue_depth: self.admission.queue_depth(),
            cache: self.cache.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hexcute_arch::DType;
    use hexcute_ir::KernelBuilder;
    use hexcute_kernels::attention::{mha_forward, AttentionConfig, AttentionShape};
    use hexcute_kernels::gemm::{fp16_gemm, GemmConfig, GemmShape};
    use hexcute_layout::Layout;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    fn small_program(name: &str) -> Program {
        let mut kb = KernelBuilder::new(name, 128);
        let x = kb.global_view("x", DType::F32, Layout::row_major(&[64, 64]), &[64, 64]);
        let y = kb.global_view("y", DType::F32, Layout::row_major(&[64, 64]), &[64, 64]);
        let r = kb.register_tensor("r", DType::F32, &[64, 64]);
        kb.copy(x, r);
        kb.copy(r, y);
        kb.build().unwrap()
    }

    fn unique_temp_dir(tag: &str) -> std::path::PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "hexcute-service-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn concurrent_same_key_requests_coalesce_to_one_synthesis() {
        let service = CompileService::new(GpuArch::a100());
        let program = fp16_gemm(GemmShape::new(1024, 1024, 1024), GemmConfig::default()).unwrap();
        let threads = 8;
        let barrier = Barrier::new(threads);
        let artifacts: Vec<Arc<KernelArtifact>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        service.compile(&program).unwrap().artifact
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let stats = service.stats();
        assert_eq!(stats.requests, threads as u64);
        assert_eq!(
            stats.syntheses, 1,
            "concurrent requests for one fingerprint must coalesce: {stats}"
        );
        for artifact in &artifacts[1..] {
            assert_eq!(**artifact, *artifacts[0]);
        }
    }

    #[test]
    fn batch_deduplicates_and_preserves_order() {
        let service = CompileService::new(GpuArch::a100());
        let a = small_program("batch_a");
        let b = small_program("batch_b");
        let batch = vec![a.clone(), b.clone(), a.clone(), b.clone(), a.clone()];
        let responses = service.compile_batch(batch);
        assert_eq!(responses.len(), 5);
        let artifacts: Vec<_> = responses.into_iter().map(|r| r.unwrap().artifact).collect();
        assert_eq!(artifacts[0].kernel, "batch_a");
        assert_eq!(artifacts[1].kernel, "batch_b");
        assert_eq!(*artifacts[0], *artifacts[2]);
        assert_eq!(*artifacts[0], *artifacts[4]);
        assert_eq!(*artifacts[1], *artifacts[3]);
        let stats = service.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.requests, 5);
        assert_eq!(
            stats.syntheses, 2,
            "three duplicate requests must be served without re-synthesis: {stats}"
        );
    }

    #[test]
    fn distinct_options_get_distinct_artifacts() {
        let arch = GpuArch::a100();
        let program = small_program("options_sensitive");
        let default = CompileService::new(arch.clone());
        let scalar = CompileService::with_config(
            arch,
            CompilerOptions {
                synthesis: hexcute_core::SynthesisOptions::scalar_fallback(),
                use_cost_model: true,
            },
            KernelCacheConfig::default(),
        );
        let d = default.compile(&program).unwrap();
        let s = scalar.compile(&program).unwrap();
        assert_ne!(d.artifact.fingerprint, s.artifact.fingerprint);
    }

    #[test]
    fn disk_store_survives_a_service_restart() {
        let dir = unique_temp_dir("restart");
        let config = KernelCacheConfig {
            dir: Some(dir.clone()),
            ..KernelCacheConfig::default()
        };
        let program = mha_forward(
            AttentionShape::decoding(4, 8, 512, 64),
            AttentionConfig::default(),
        )
        .unwrap();
        let first =
            CompileService::with_config(GpuArch::h100(), CompilerOptions::new(), config.clone());
        let cold = first.compile(&program).unwrap();
        assert_eq!(cold.served_from, ServedFrom::Synthesized);
        drop(first);

        // A fresh service (fresh memory front) over the same directory
        // serves the artifact from disk, bit-identically.
        let second = CompileService::with_config(GpuArch::h100(), CompilerOptions::new(), config);
        let warm = second.compile(&program).unwrap();
        assert_eq!(warm.served_from, ServedFrom::Disk);
        assert_eq!(*warm.artifact, *cold.artifact);
        assert_eq!(second.stats().syntheses, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quant_and_grouped_families_serve_through_the_cache_bit_identically() {
        use hexcute_kernels::grouped_gemm::{grouped_gemm, GroupedGemmConfig, GroupedGemmShape};
        use hexcute_kernels::quant_gemm::{w4a16_gemm, QuantGemmConfig, QuantGemmShape};

        let dir = unique_temp_dir("families");
        let config = KernelCacheConfig {
            dir: Some(dir.clone()),
            ..KernelCacheConfig::default()
        };
        let quant = w4a16_gemm(
            QuantGemmShape::new(16, 128, 256, 64),
            QuantGemmConfig::default(),
        )
        .unwrap();
        let grouped = grouped_gemm(
            &GroupedGemmShape::uniform(8, 16, 256, 512),
            GroupedGemmConfig::default(),
        )
        .unwrap();

        let service =
            CompileService::with_config(GpuArch::h100(), CompilerOptions::new(), config.clone());
        // A batch over both families: two syntheses, duplicates coalesce.
        let responses = service.compile_batch(vec![
            quant.clone(),
            grouped.clone(),
            quant.clone(),
            grouped.clone(),
        ]);
        let artifacts: Vec<_> = responses.into_iter().map(|r| r.unwrap().artifact).collect();
        assert_eq!(service.stats().syntheses, 2);
        assert_eq!(*artifacts[0], *artifacts[2]);
        assert_eq!(*artifacts[1], *artifacts[3]);
        assert_eq!(artifacts[0].kernel, "w4a16_gemm");
        assert_eq!(artifacts[1].kernel, "grouped_gemm");
        // The artifacts carry the new pipeline features end to end.
        assert!(
            artifacts[0].cuda.contains("dequant"),
            "{}",
            artifacts[0].cuda
        );
        assert!(artifacts[0]
            .lowered
            .iter()
            .any(|line| line.contains("unpack")));

        // Warm memory hits are bit-identical.
        let warm = service.compile(&quant).unwrap();
        assert_eq!(warm.served_from, ServedFrom::Memory);
        assert_eq!(*warm.artifact, *artifacts[0]);

        // A restart (fresh memory front, same directory) serves both
        // families from disk, bit-identically, with zero syntheses.
        let restarted =
            CompileService::with_config(GpuArch::h100(), CompilerOptions::new(), config);
        let disk_quant = restarted.compile(&quant).unwrap();
        let disk_grouped = restarted.compile(&grouped).unwrap();
        assert_eq!(disk_quant.served_from, ServedFrom::Disk);
        assert_eq!(disk_grouped.served_from, ServedFrom::Disk);
        assert_eq!(*disk_quant.artifact, *artifacts[0]);
        assert_eq!(*disk_grouped.artifact, *artifacts[1]);
        assert_eq!(restarted.stats().syntheses, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shutdown_rejects_new_requests_with_a_typed_error() {
        let service = CompileService::new(GpuArch::a100());
        let program = small_program("shutdown_entry");
        service.shutdown();
        match service.compile(&program) {
            Err(CompileError::Cancelled {
                reason: CancelReason::Shutdown,
            }) => {}
            other => panic!("expected a typed shutdown cancellation, got {other:?}"),
        }
        let stats = service.stats();
        assert_eq!(stats.shutdown_drained, 1, "{stats}");
        assert_eq!(stats.syntheses, 0, "no synthesis may start after shutdown");
        // Idempotent.
        service.shutdown();
        assert!(service.is_shut_down());
    }

    #[test]
    fn watchdog_trips_a_runaway_synthesis_with_a_typed_timeout() {
        // A large GEMM search runs far longer than a 1 ms watchdog budget;
        // the supervisor must trip it and the claimant must return
        // `SynthesisTimeout` without caching anything.
        let service = CompileService::with_service_config(
            GpuArch::a100(),
            CompilerOptions::new(),
            KernelCacheConfig::default(),
            ServiceConfig {
                watchdog: Some(Duration::from_millis(1)),
                ..ServiceConfig::default()
            },
        );
        let program = fp16_gemm(GemmShape::new(1024, 1024, 1024), GemmConfig::default()).unwrap();
        match service.compile(&program) {
            Err(CompileError::SynthesisTimeout { elapsed }) => {
                assert!(elapsed >= Duration::from_millis(1), "{elapsed:?}");
            }
            other => panic!("expected a watchdog timeout, got {other:?}"),
        }
        let stats = service.stats();
        assert_eq!(stats.watchdog_trips, 1, "{stats}");
        assert_eq!(stats.cancelled, 1, "{stats}");
        assert_eq!(
            stats.cache.memory.entries, 0,
            "a cancelled synthesis must never cache: {stats}"
        );
        assert!(
            !service.cancel_to_free_latencies().is_empty(),
            "the cancelled claimant must record its cancel-to-free latency"
        );
    }

    #[test]
    fn synthesis_errors_are_not_cached() {
        // An empty program fails synthesis; the failure must propagate and a
        // subsequent request must retry (not serve a cached error).
        let service = CompileService::new(GpuArch::a100());
        let program = KernelBuilder::new("empty", 128).build();
        if let Ok(program) = program {
            let first = service.compile(&program);
            let second = service.compile(&program);
            match (first, second) {
                (Err(_), Err(_)) => {
                    assert_eq!(service.stats().syntheses, 2, "errors must not be cached");
                }
                (Ok(_), Ok(_)) => {
                    assert_eq!(service.stats().syntheses, 1);
                }
                other => panic!("inconsistent results across identical requests: {other:?}"),
            }
        }
    }
}
