//! A batched compile service over the persistent kernel-artifact cache.
//!
//! The serving loop (see [`crate::decode_latency_ms_with`]) issues the *same* few dozen
//! kernel compilations over and over — per decode step, per process start,
//! per replica. [`CompileService`] turns the PR 1–3 fast search into a
//! servable subsystem:
//!
//! * **Cache first.** Every request is keyed by the stable artifact
//!   fingerprint and answered from the [`KernelCache`] (memory, then disk)
//!   when possible.
//! * **Coalescing.** Concurrent requests for the *same* fingerprint join a
//!   single in-flight synthesis instead of each running the search: the
//!   first requester synthesizes, the rest block on its completion and
//!   share the resulting artifact.
//! * **Batching.** [`CompileService::compile_batch`] fans *distinct*
//!   requests out across the PR 3 persistent worker pool; duplicates within
//!   a batch deduplicate through the coalescing path.
//! * **Admission control & fault tolerance** (PR 6). A [`ServiceConfig`]
//!   bounds concurrent syntheses plus a pending queue (full queue → typed
//!   load shedding via [`CompileError::Overloaded`]), enforces per-request
//!   deadlines while queued, while coalesced *and* — since PR 8 — against
//!   the in-flight synthesis itself
//!   ([`CompileError::DeadlineExceeded`]), and retries transient failures —
//!   a panicked synthesis wakes every coalesced waiter with a retryable
//!   [`CompileError::Panicked`] instead of deadlocking them — with
//!   exponential backoff and deterministic seeded jitter. Cache hits bypass
//!   admission entirely: backpressure protects the expensive synthesis
//!   path, never the cheap one. See `docs/ROBUSTNESS.md` for the full
//!   degradation ladder.
//! * **Cooperative cancellation & supervision** (PR 8). Every synthesis
//!   carries a [`CancelToken`] that the search
//!   walks poll at row granularity, so a deadline that expires *mid-
//!   synthesis* now aborts the in-flight search — freeing its admission
//!   slot and broadcasting a typed [`CompileError::DeadlineExceeded`] to
//!   every coalesced waiter — instead of running to completion. A lazily
//!   spawned watchdog thread (`HEXCUTE_WATCHDOG_MS`) trips runaway
//!   compiles with [`CompileError::SynthesisTimeout`], and
//!   [`CompileService::shutdown`] drains the admission queue and cancels
//!   all in-flight work with typed [`CompileError::Cancelled`] errors.
//!   Wall-clock cancellation yields typed errors only: a cancelled
//!   synthesis never produces a partial artifact and never touches the
//!   cache.
//! * **Priority-aware serving front-end** (PR 10). Admission is a
//!   *ticketed* bounded queue per [`Priority`] class, granted strictly in
//!   ticket order within a class (no `notify_one` starvation) with
//!   periodic background boosts so autotune traffic is never starved,
//!   per-[`TenantId`] weighted fair scheduling with optional quotas
//!   (`HEXCUTE_SERVICE_TENANT_QUOTA`), per-class load shedding, and
//!   **speculative precompilation**: the request stream is mined for
//!   recurring fingerprint transitions and predicted successors are
//!   prefetched into the warm cache tier on spare pool capacity
//!   ([`hexcute_parallel::spawn_background`]) before they are requested.
//!
//! ```
//! use hexcute_arch::{DType, GpuArch};
//! use hexcute_e2e::{CompileService, ServedFrom};
//! use hexcute_ir::KernelBuilder;
//! use hexcute_layout::Layout;
//!
//! let mut kb = KernelBuilder::new("served_copy", 128);
//! let x = kb.global_view("x", DType::F32, Layout::row_major(&[64, 64]), &[64, 64]);
//! let y = kb.global_view("y", DType::F32, Layout::row_major(&[64, 64]), &[64, 64]);
//! let r = kb.register_tensor("r", DType::F32, &[64, 64]);
//! kb.copy(x, r);
//! kb.copy(r, y);
//! let program = kb.build()?;
//!
//! let service = CompileService::new(GpuArch::a100());
//! let cold = service.compile(&program)?;
//! assert_eq!(cold.served_from, ServedFrom::Synthesized);
//! let warm = service.compile(&program)?;
//! assert_eq!(warm.served_from, ServedFrom::Memory);
//! assert_eq!(*cold.artifact, *warm.artifact);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

use hexcute_arch::GpuArch;
use hexcute_core::{
    faults, ArtifactSource, CancelReason, CancelToken, CompileError, Compiler, CompilerOptions,
    FaultInjector, FaultKind, KernelArtifact, KernelCache, KernelCacheConfig, KernelCacheStats,
};
use hexcute_ir::Program;

/// How a [`CompileResponse`] was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// The artifact cache's in-memory front.
    Memory,
    /// The artifact cache's disk store.
    Disk,
    /// This request ran the synthesis itself.
    Synthesized,
    /// This request joined another request's in-flight synthesis.
    Coalesced,
}

impl fmt::Display for ServedFrom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ServedFrom::Memory => "memory",
            ServedFrom::Disk => "disk",
            ServedFrom::Synthesized => "synthesized",
            ServedFrom::Coalesced => "coalesced",
        })
    }
}

impl From<ArtifactSource> for ServedFrom {
    fn from(source: ArtifactSource) -> Self {
        match source {
            ArtifactSource::Memory => ServedFrom::Memory,
            ArtifactSource::Disk => ServedFrom::Disk,
            ArtifactSource::Synthesized => ServedFrom::Synthesized,
        }
    }
}

/// The scheduling class of a compile request.
///
/// Latency-critical requests (decode-step compiles on the serving path) and
/// background requests (autotune sweeps, warmup, batch precompiles) wait in
/// separate bounded queues; the grant loop prefers the latency class but
/// periodically boosts a background waiter ([`ServiceConfig::boost_interval`])
/// so background traffic makes guaranteed progress under sustained
/// latency-critical load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Serve as soon as a slot frees: decode-path compiles.
    #[default]
    LatencyCritical,
    /// Yield to latency-critical traffic: autotune / warmup compiles.
    Background,
}

impl Priority {
    /// Index into per-class arrays (`[latency, background]`).
    pub fn index(self) -> usize {
        match self {
            Priority::LatencyCritical => LATENCY,
            Priority::Background => BACKGROUND,
        }
    }

    /// A stable lowercase label (bench JSON keys, logs).
    pub fn label(self) -> &'static str {
        match self {
            Priority::LatencyCritical => "latency_critical",
            Priority::Background => "background",
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An opaque tenant identity used for weighted fair scheduling and quotas.
///
/// The scheduler grants the eligible waiter whose tenant currently holds the
/// fewest synthesis slots (ties broken by ticket, i.e. arrival order), and
/// [`ServiceConfig::tenant_quota`] caps how many slots one tenant may hold at
/// once. The default `TenantId(0)` is fine for single-tenant callers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Queue index of [`Priority::LatencyCritical`].
const LATENCY: usize = 0;
/// Queue index of [`Priority::Background`].
const BACKGROUND: usize = 1;
/// The pseudo-tenant that speculative prefetch slots are accounted to.
const PREFETCH_TENANT: TenantId = TenantId(u32::MAX);

/// One served compilation: the (shared) artifact plus how it was obtained.
#[derive(Debug, Clone)]
pub struct CompileResponse {
    /// The compiled kernel artifact.
    pub artifact: Arc<KernelArtifact>,
    /// Where the artifact came from.
    pub served_from: ServedFrom,
}

impl CompileResponse {
    /// The estimated kernel latency in microseconds.
    pub fn latency_us(&self) -> f64 {
        self.artifact.latency_us()
    }
}

/// Admission, deadline and retry policy of a [`CompileService`].
///
/// The defaults are fully permissive — unbounded concurrency, no deadline —
/// so a service constructed without an explicit config behaves exactly like
/// the pre-admission-control service; production deployments opt in via
/// [`ServiceConfig::from_env`] (`HEXCUTE_SERVICE_*`) or explicit fields.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum syntheses running at once. `0` (the default) means
    /// unbounded: no admission accounting at all.
    pub max_concurrent: usize,
    /// Latency-critical requests allowed to wait for an admission slot
    /// beyond `max_concurrent`; arrivals past this are shed with
    /// [`CompileError::Overloaded`]. Ignored while `max_concurrent` is 0.
    pub queue_capacity: usize,
    /// The same bound for the background class, so a flood of autotune
    /// requests sheds without consuming latency-critical queue slots.
    pub background_queue_capacity: usize,
    /// Synthesis slots one tenant may hold at once; a tenant at its quota
    /// parks (other tenants overtake it) until it releases a slot. `0` (the
    /// default) means no quota.
    pub tenant_quota: usize,
    /// After this many consecutive latency-critical grants made while a
    /// background waiter was parked, one background waiter is boosted ahead
    /// of the latency queue — bounded starvation for the background class.
    /// `0` disables boosting (strict priority).
    pub boost_interval: u64,
    /// Enables speculative precompilation: mine the request stream for
    /// recurring fingerprint transitions and warm predicted successors in
    /// the background on spare capacity. Off by default so synthesis counts
    /// stay exact for callers that assert them.
    pub prefetch: bool,
    /// Per-request deadline, enforced while queued for admission, while
    /// waiting on a coalesced in-flight synthesis, *and* — since PR 8 —
    /// against the in-flight synthesis itself, which is cooperatively
    /// cancelled when the deadline passes. `None` disables it.
    pub deadline: Option<Duration>,
    /// Wall-clock watchdog for one synthesis: a search still running this
    /// long after it started is cancelled with
    /// [`CompileError::SynthesisTimeout`]. Unlike `deadline` (which counts
    /// from request arrival, queueing included), the watchdog counts from
    /// synthesis start and so catches runaway searches specifically.
    /// `None` disables it.
    pub watchdog: Option<Duration>,
    /// Retries of a *transient* failure (a panicked synthesis) before the
    /// error is returned. `0` disables retrying.
    pub max_retries: usize,
    /// Base of the exponential retry backoff: retry `n` sleeps
    /// `retry_backoff * 2^(n-1)` plus jitter in `[0, retry_backoff)`.
    pub retry_backoff: Duration,
    /// Seed of the deterministic jitter stream (replayable chaos runs).
    pub seed: u64,
    /// Fault injector threaded through the service and its cache. Defaults
    /// to the process-global `HEXCUTE_FAULTS` injector ([`faults::global`]),
    /// i.e. `None` in production.
    pub faults: Option<Arc<FaultInjector>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_concurrent: 0,
            queue_capacity: 64,
            background_queue_capacity: 64,
            tenant_quota: 0,
            boost_interval: 4,
            prefetch: false,
            deadline: None,
            watchdog: None,
            max_retries: 2,
            retry_backoff: Duration::from_millis(2),
            seed: 0,
            faults: faults::global().cloned(),
        }
    }
}

/// What an environment variable held, as seen by [`env_setting`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EnvParse<T> {
    /// The variable is not set.
    Unset,
    /// The variable parsed.
    Value(T),
    /// The variable is set but does not parse as `T`.
    Invalid,
}

/// Classifies `raw` (the variable's value, if set) without consuming errors
/// silently — the caller decides whether `Invalid` warrants a warning.
fn parse_env<T: std::str::FromStr>(raw: Option<&str>) -> EnvParse<T> {
    match raw {
        None => EnvParse::Unset,
        Some(raw) => match raw.trim().parse::<T>() {
            Ok(value) => EnvParse::Value(value),
            Err(_) => EnvParse::Invalid,
        },
    }
}

/// Warns on stderr about an unparsable variable, at most once per variable
/// name per process (the `HEXCUTE_THREADS` convention from the parallel
/// crate). Returns whether this call was the one that warned.
fn warn_once_unparsable(name: &str, raw: &str) -> bool {
    static WARNED: OnceLock<Mutex<HashSet<String>>> = OnceLock::new();
    let mut warned = WARNED
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    if !warned.insert(name.to_string()) {
        return false;
    }
    eprintln!("hexcute: ignoring unparsable {name}={raw:?}; using the default");
    true
}

/// Reads `name` from the environment: unset → `default`, parsable → the
/// value, unparsable → `default` plus a once-per-variable stderr warning
/// (never a silent swallow).
fn env_setting<T: std::str::FromStr>(name: &str, default: T) -> T {
    let raw = std::env::var(name).ok();
    match parse_env::<T>(raw.as_deref()) {
        EnvParse::Unset => default,
        EnvParse::Value(value) => value,
        EnvParse::Invalid => {
            warn_once_unparsable(name, raw.as_deref().unwrap_or(""));
            default
        }
    }
}

impl ServiceConfig {
    /// Reads the policy from the environment:
    ///
    /// | Variable | Meaning | Default |
    /// |---|---|---|
    /// | `HEXCUTE_SERVICE_MAX_CONCURRENT` | concurrent synthesis bound (`0` = admission disabled entirely) | 0 |
    /// | `HEXCUTE_SERVICE_QUEUE_CAPACITY` | latency-class queue capacity before shedding | 64 |
    /// | `HEXCUTE_SERVICE_BG_QUEUE_CAPACITY` | background-class queue capacity before shedding | 64 |
    /// | `HEXCUTE_SERVICE_TENANT_QUOTA` | synthesis slots one tenant may hold (`0` = no quota) | 0 |
    /// | `HEXCUTE_SERVICE_BOOST_INTERVAL` | latency grants between background boosts (`0` = strict priority) | 4 |
    /// | `HEXCUTE_SERVICE_PREFETCH` | nonzero enables speculative precompilation | 0 |
    /// | `HEXCUTE_SERVICE_DEADLINE_MS` | per-request deadline in milliseconds (`0` = none) | unset → none |
    /// | `HEXCUTE_WATCHDOG_MS` | per-synthesis watchdog in milliseconds (`0` = none) | unset → none |
    /// | `HEXCUTE_SERVICE_RETRIES` | transient-failure retries | 2 |
    /// | `HEXCUTE_SERVICE_RETRY_BACKOFF_MS` | backoff base in milliseconds | 2 |
    /// | `HEXCUTE_SERVICE_SEED` | jitter seed | 0 |
    ///
    /// An unparsable value falls back to its default and warns **once** per
    /// variable on stderr; see `docs/TUNING.md` for the full knob reference.
    pub fn from_env() -> Self {
        let defaults = Self::default();
        let duration_ms = |name: &str| match env_setting::<u64>(name, 0) {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        };
        ServiceConfig {
            max_concurrent: env_setting("HEXCUTE_SERVICE_MAX_CONCURRENT", defaults.max_concurrent),
            queue_capacity: env_setting("HEXCUTE_SERVICE_QUEUE_CAPACITY", defaults.queue_capacity),
            background_queue_capacity: env_setting(
                "HEXCUTE_SERVICE_BG_QUEUE_CAPACITY",
                defaults.background_queue_capacity,
            ),
            tenant_quota: env_setting("HEXCUTE_SERVICE_TENANT_QUOTA", defaults.tenant_quota),
            boost_interval: env_setting("HEXCUTE_SERVICE_BOOST_INTERVAL", defaults.boost_interval),
            prefetch: env_setting::<u64>("HEXCUTE_SERVICE_PREFETCH", 0) != 0,
            deadline: duration_ms("HEXCUTE_SERVICE_DEADLINE_MS"),
            watchdog: duration_ms("HEXCUTE_WATCHDOG_MS"),
            max_retries: env_setting("HEXCUTE_SERVICE_RETRIES", defaults.max_retries),
            retry_backoff: Duration::from_millis(env_setting(
                "HEXCUTE_SERVICE_RETRY_BACKOFF_MS",
                defaults.retry_backoff.as_millis() as u64,
            )),
            seed: env_setting("HEXCUTE_SERVICE_SEED", defaults.seed),
            faults: defaults.faults,
        }
    }
}

// ---------------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------------

/// Where a ticketed waiter is in its admission lifecycle. Transitions are
/// made under the waiter's own `phase` mutex, which is only ever taken
/// *after* the admission state lock (lock order: state, then phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaiterPhase {
    /// Parked in a class queue.
    Waiting,
    /// Granted a slot (the grantor already charged `active`); the waiter
    /// owns the slot as soon as it observes this.
    Granted,
    /// Drained by shutdown; the waiter exits with a typed cancellation.
    Drained,
}

/// One parked request in the ticketed admission queue.
#[derive(Debug)]
struct Waiter {
    /// Monotone admission ticket: FIFO order within a class and tenant.
    ticket: u64,
    tenant: TenantId,
    phase: Mutex<WaiterPhase>,
    wake: Condvar,
}

#[derive(Debug)]
struct AdmissionState {
    /// Synthesis slots currently held.
    active: usize,
    /// Slots held per tenant (entries removed at zero) — drives the
    /// weighted-fair grant order and the quota check.
    active_per_tenant: HashMap<TenantId, usize>,
    /// Parked waiters per class (`[LATENCY, BACKGROUND]`), in ticket order.
    queues: [VecDeque<Arc<Waiter>>; 2],
    /// Next admission ticket to issue.
    next_ticket: u64,
    /// Consecutive latency-class grants made while a background waiter was
    /// parked; at [`ServiceConfig::boost_interval`] the next grant boosts
    /// the background class instead.
    latency_run: u64,
}

/// A bounded-concurrency gate with a *ticketed* bounded wait queue per
/// priority class: the synchronous analogue of an async weighted-fair
/// semaphore + listen queues. Cache hits never touch it; only requests
/// about to synthesize (or join a synthesis) pass through. Grants are made
/// by the releasing thread under the state lock — directly to a specific
/// waiter, in ticket order within a class — so a `notify_one` can never
/// wake the "wrong" waiter and strand an older one (the starvation mode of
/// the previous Condvar gate).
#[derive(Debug)]
struct Admission {
    max_concurrent: usize,
    /// Per-class queue capacity (`[LATENCY, BACKGROUND]`).
    queue_capacity: [usize; 2],
    /// Slots one tenant may hold at once (`0` = no quota).
    tenant_quota: usize,
    /// Latency grants between background boosts (`0` = strict priority).
    boost_interval: u64,
    state: Mutex<AdmissionState>,
    max_queue_depth: AtomicU64,
    /// Background waiters granted ahead of a parked latency waiter by the
    /// anti-starvation boost (the only sanctioned reordering).
    background_boosts: AtomicU64,
    /// Background grants that overtook a parked latency waiter *outside* a
    /// boost. Zero by construction; counted (and asserted zero by the
    /// traffic bench) as a defensive scheduling-invariant probe.
    priority_inversions: AtomicU64,
    /// Set by [`CompileService::shutdown`]: new arrivals are rejected on
    /// the fast path and parked waiters drain out with a typed shutdown
    /// cancellation instead of waiting for a slot that will never be used.
    shutdown: AtomicBool,
}

/// RAII admission slot; dropping it releases the slot, re-credits the
/// tenant and grants to the next eligible waiter(s).
struct AdmissionPermit<'a> {
    admission: Option<&'a Admission>,
    tenant: TenantId,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        if let Some(admission) = self.admission.take() {
            let mut state = admission.state.lock().unwrap_or_else(|p| p.into_inner());
            admission.release_locked(&mut state, self.tenant);
        }
    }
}

impl Admission {
    fn new(config: &ServiceConfig) -> Self {
        Admission {
            max_concurrent: config.max_concurrent,
            queue_capacity: [config.queue_capacity, config.background_queue_capacity],
            tenant_quota: config.tenant_quota,
            boost_interval: config.boost_interval,
            state: Mutex::new(AdmissionState {
                active: 0,
                active_per_tenant: HashMap::new(),
                queues: [VecDeque::new(), VecDeque::new()],
                next_ticket: 0,
                latency_run: 0,
            }),
            max_queue_depth: AtomicU64::new(0),
            background_boosts: AtomicU64::new(0),
            priority_inversions: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Drains both wait queues: every parked waiter wakes and exits with a
    /// typed shutdown cancellation.
    fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        for class in [LATENCY, BACKGROUND] {
            while let Some(waiter) = state.queues[class].pop_front() {
                *waiter.phase.lock().unwrap_or_else(|p| p.into_inner()) = WaiterPhase::Drained;
                waiter.wake.notify_all();
            }
        }
    }

    /// The queue position of the next grantable waiter in `class`, or
    /// `None` when every parked waiter of the class is quota-blocked (or
    /// the queue is empty). Within a tenant only its earliest waiter is
    /// eligible (FIFO per tenant); across tenants the one holding the
    /// fewest slots wins, ties broken by ticket — weighted fair share with
    /// arrival order as the tiebreak.
    fn candidate(&self, state: &AdmissionState, class: usize) -> Option<usize> {
        let mut best: Option<(usize, u64, usize)> = None;
        let mut seen: HashSet<TenantId> = HashSet::new();
        for (pos, waiter) in state.queues[class].iter().enumerate() {
            if !seen.insert(waiter.tenant) {
                continue;
            }
            let held = state
                .active_per_tenant
                .get(&waiter.tenant)
                .copied()
                .unwrap_or(0);
            if self.tenant_quota > 0 && held >= self.tenant_quota {
                continue;
            }
            if best.is_none_or(|(bh, bt, _)| (held, waiter.ticket) < (bh, bt)) {
                best = Some((held, waiter.ticket, pos));
            }
        }
        best.map(|(_, _, pos)| pos)
    }

    /// Grants slots to eligible waiters while capacity remains: latency
    /// class first, a background waiter every `boost_interval` consecutive
    /// latency grants made over its head. Runs under the state lock, on
    /// every enqueue and every release.
    fn grant_ready(&self, state: &mut AdmissionState) {
        while state.active < self.max_concurrent {
            let latency = self.candidate(state, LATENCY);
            let background = self.candidate(state, BACKGROUND);
            let boost = self.boost_interval > 0 && state.latency_run >= self.boost_interval;
            let class = match (latency, background) {
                (None, None) => break,
                (Some(_), None) => LATENCY,
                (None, Some(_)) => BACKGROUND,
                (Some(_), Some(_)) if boost => BACKGROUND,
                (Some(_), Some(_)) => LATENCY,
            };
            if class == BACKGROUND {
                if latency.is_some() {
                    if boost {
                        self.background_boosts.fetch_add(1, Ordering::Relaxed);
                    } else {
                        // Unreachable by construction; see the field docs.
                        self.priority_inversions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                state.latency_run = 0;
            } else {
                // The run only counts grants made *over a parked background
                // waiter's head*; an empty background queue starves nobody.
                state.latency_run = if background.is_some() {
                    state.latency_run + 1
                } else {
                    0
                };
            }
            let pos = match class {
                LATENCY => latency.expect("latency candidate exists"),
                _ => background.expect("background candidate exists"),
            };
            let waiter = state.queues[class]
                .remove(pos)
                .expect("candidate position is in range");
            state.active += 1;
            *state.active_per_tenant.entry(waiter.tenant).or_insert(0) += 1;
            *waiter.phase.lock().unwrap_or_else(|p| p.into_inner()) = WaiterPhase::Granted;
            waiter.wake.notify_all();
        }
    }

    /// Releases one slot held by `tenant` and grants onward. Caller holds
    /// the state lock.
    fn release_locked(&self, state: &mut AdmissionState, tenant: TenantId) {
        state.active = state.active.saturating_sub(1);
        if let Some(held) = state.active_per_tenant.get_mut(&tenant) {
            *held = held.saturating_sub(1);
            if *held == 0 {
                state.active_per_tenant.remove(&tenant);
            }
        }
        self.grant_ready(state);
    }

    /// Acquires a synthesis slot, waiting (up to `deadline`) in the class's
    /// bounded ticketed queue when no slot can be granted immediately.
    ///
    /// # Errors
    ///
    /// [`CompileError::Overloaded`] when the class's wait queue is already
    /// full, [`CompileError::DeadlineExceeded`] when the deadline passes
    /// first and [`CompileError::Cancelled`] (shutdown) when the service is
    /// shutting down — checked on the fast path too, so a post-shutdown
    /// request can never start a fresh synthesis on a draining service.
    fn acquire(
        &self,
        priority: Priority,
        tenant: TenantId,
        start: Instant,
        deadline: Option<Instant>,
    ) -> Result<AdmissionPermit<'_>, CompileError> {
        // Fast-path shutdown check: without it, a request arriving after
        // `shutdown()` that found `active < max_concurrent` was handed a
        // slot and started synthesizing on a draining service.
        if self.shutdown.load(Ordering::SeqCst) {
            return Err(CompileError::Cancelled {
                reason: CancelReason::Shutdown,
            });
        }
        if self.max_concurrent == 0 {
            // Documented sentinel: admission disabled entirely (no slot
            // accounting, no queues, no quotas). See `docs/TUNING.md`.
            return Ok(AdmissionPermit {
                admission: None,
                tenant,
            });
        }
        let class = priority.index();
        let waiter = {
            let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
            // Re-check under the lock: a racing `shutdown()` that already
            // swept the queues must not miss this arrival.
            if self.shutdown.load(Ordering::SeqCst) {
                return Err(CompileError::Cancelled {
                    reason: CancelReason::Shutdown,
                });
            }
            let waiter = Arc::new(Waiter {
                ticket: state.next_ticket,
                tenant,
                phase: Mutex::new(WaiterPhase::Waiting),
                wake: Condvar::new(),
            });
            state.next_ticket += 1;
            state.queues[class].push_back(waiter.clone());
            self.grant_ready(&mut state);
            let granted =
                *waiter.phase.lock().unwrap_or_else(|p| p.into_inner()) == WaiterPhase::Granted;
            if !granted && state.queues[class].len() > self.queue_capacity[class] {
                // This arrival would park beyond its class's capacity: shed
                // it. The high-water mark records the depth it was denied at
                // (parked waiters + itself), so fill-and-shed traffic where
                // nobody ever parks still registers.
                let depth = state.queues[LATENCY].len() + state.queues[BACKGROUND].len();
                self.max_queue_depth
                    .fetch_max(depth as u64, Ordering::Relaxed);
                state.queues[class].retain(|w| w.ticket != waiter.ticket);
                return Err(CompileError::Overloaded {
                    queued: state.queues[class].len(),
                    capacity: self.queue_capacity[class],
                });
            }
            let parked = state.queues[LATENCY].len() + state.queues[BACKGROUND].len();
            if parked > 0 {
                self.max_queue_depth
                    .fetch_max(parked as u64, Ordering::Relaxed);
            }
            waiter
        };
        let mut phase = waiter.phase.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            match *phase {
                WaiterPhase::Granted => {
                    return Ok(AdmissionPermit {
                        admission: Some(self),
                        tenant,
                    });
                }
                WaiterPhase::Drained => {
                    return Err(CompileError::Cancelled {
                        reason: CancelReason::Shutdown,
                    });
                }
                WaiterPhase::Waiting => match deadline {
                    None => {
                        phase = waiter.wake.wait(phase).unwrap_or_else(|p| p.into_inner());
                    }
                    Some(dl) => {
                        let now = Instant::now();
                        if now >= dl {
                            drop(phase);
                            return self.abandon(&waiter, class, start);
                        }
                        let (p, _) = waiter
                            .wake
                            .wait_timeout(phase, dl - now)
                            .unwrap_or_else(|p| p.into_inner());
                        phase = p;
                    }
                },
            }
        }
    }

    /// Resolves a waiter whose deadline expired: dequeue it, or — when a
    /// grant raced the timeout — hand the already-charged slot onward
    /// instead of serving a request whose deadline has passed.
    fn abandon(
        &self,
        waiter: &Arc<Waiter>,
        class: usize,
        start: Instant,
    ) -> Result<AdmissionPermit<'_>, CompileError> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let phase = *waiter.phase.lock().unwrap_or_else(|p| p.into_inner());
        match phase {
            WaiterPhase::Granted => {
                self.release_locked(&mut state, waiter.tenant);
                Err(CompileError::DeadlineExceeded {
                    elapsed: start.elapsed(),
                })
            }
            WaiterPhase::Drained => Err(CompileError::Cancelled {
                reason: CancelReason::Shutdown,
            }),
            WaiterPhase::Waiting => {
                state.queues[class].retain(|w| w.ticket != waiter.ticket);
                Err(CompileError::DeadlineExceeded {
                    elapsed: start.elapsed(),
                })
            }
        }
    }

    /// A slot for speculative work, granted only from genuinely *spare*
    /// capacity: a free slot while **both** class queues are empty.
    /// Speculation never displaces or delays a demand request; the slot is
    /// accounted to [`PREFETCH_TENANT`] so quotas and fairness see it.
    fn try_acquire_spare(&self) -> Option<AdmissionPermit<'_>> {
        if self.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        if self.max_concurrent == 0 {
            return Some(AdmissionPermit {
                admission: None,
                tenant: PREFETCH_TENANT,
            });
        }
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if state.active < self.max_concurrent
            && state.queues[LATENCY].is_empty()
            && state.queues[BACKGROUND].is_empty()
        {
            state.active += 1;
            *state.active_per_tenant.entry(PREFETCH_TENANT).or_insert(0) += 1;
            Some(AdmissionPermit {
                admission: Some(self),
                tenant: PREFETCH_TENANT,
            })
        } else {
            None
        }
    }

    /// Requests currently parked waiting for a slot (both classes).
    fn queue_depth(&self) -> usize {
        let state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.queues[LATENCY].len() + state.queues[BACKGROUND].len()
    }
}

/// Counters describing a [`CompileService`]'s behaviour. Snapshot via
/// [`CompileService::stats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Requests served (including batch members).
    pub requests: u64,
    /// Requests that joined another request's in-flight synthesis.
    pub coalesced: u64,
    /// Syntheses actually executed.
    pub syntheses: u64,
    /// [`CompileService::compile_batch`] invocations.
    pub batches: u64,
    /// Requests shed because the admission queue was full.
    pub shed: u64,
    /// Requests that gave up on their deadline (queued or coalesced).
    pub deadline_exceeded: u64,
    /// Transient-failure retries performed.
    pub retries: u64,
    /// Syntheses that panicked (caught, turned into
    /// [`CompileError::Panicked`] and broadcast to coalesced waiters).
    pub synth_panics: u64,
    /// In-flight syntheses aborted by cooperative cancellation (deadline,
    /// watchdog or shutdown). Each freed its admission slot early and
    /// returned a typed error; none produced or cached an artifact.
    pub cancelled: u64,
    /// Times the watchdog thread tripped a runaway synthesis
    /// ([`CompileError::SynthesisTimeout`]).
    pub watchdog_trips: u64,
    /// Requests drained with a typed shutdown cancellation — parked
    /// admission waiters woken by [`CompileService::shutdown`], requests
    /// arriving after it, and in-flight syntheses it cancelled.
    pub shutdown_drained: u64,
    /// Deepest the admission queue has ever been. A shed arrival counts at
    /// the depth it was denied (parked waiters + itself), so fill-and-shed
    /// traffic that never parks still registers.
    pub max_queue_depth: u64,
    /// Requests currently parked in the admission queue (both classes).
    pub queue_depth: usize,
    /// Requests submitted in the [`Priority::Background`] class.
    pub background_requests: u64,
    /// Background waiters granted ahead of a parked latency-critical waiter
    /// by the periodic anti-starvation boost.
    pub background_boosts: u64,
    /// Background grants that overtook a parked latency-critical waiter
    /// outside a boost. Zero by construction — a scheduling-invariant probe
    /// asserted by the traffic bench.
    pub priority_inversions: u64,
    /// Speculative prefetches issued (predicted successor not already warm).
    pub prefetch_issued: u64,
    /// Prefetches that left their fingerprint warm in the memory tier.
    pub prefetch_warmed: u64,
    /// Prefetches dropped without warming (no spare capacity, cancelled,
    /// program unknown, or lost to a concurrent demand synthesis).
    pub prefetch_dropped: u64,
    /// Demand memory hits whose entry was put there by a prefetch — the
    /// "warm-hit share" the speculation actually earned.
    pub prefetch_hits: u64,
    /// The artifact cache's counters.
    pub cache: KernelCacheStats,
}

impl fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests ({} coalesced, {} batches, {} background), {} syntheses, \
             {} shed, {} deadline-exceeded, {} retries, {} synth-panics, \
             {} cancelled ({} watchdog trips, {} shutdown-drained), \
             queue {} (max {}), {} boosts, {} inversions, \
             prefetch {}/{} warmed ({} dropped, {} hits); artifact cache: {}",
            self.requests,
            self.coalesced,
            self.batches,
            self.background_requests,
            self.syntheses,
            self.shed,
            self.deadline_exceeded,
            self.retries,
            self.synth_panics,
            self.cancelled,
            self.watchdog_trips,
            self.shutdown_drained,
            self.queue_depth,
            self.max_queue_depth,
            self.background_boosts,
            self.priority_inversions,
            self.prefetch_warmed,
            self.prefetch_issued,
            self.prefetch_dropped,
            self.prefetch_hits,
            self.cache
        )
    }
}

/// The result slot of one in-flight synthesis.
enum InflightState {
    /// Synthesis still running.
    Pending,
    /// Finished; joiners clone this result.
    Done(Result<Arc<KernelArtifact>, CompileError>),
    /// The claiming request unwound without completing; joiners retry.
    Abandoned,
}

struct Inflight {
    state: Mutex<InflightState>,
    ready: Condvar,
}

impl fmt::Debug for Inflight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Inflight").finish_non_exhaustive()
    }
}

impl Inflight {
    fn new() -> Self {
        Inflight {
            state: Mutex::new(InflightState::Pending),
            ready: Condvar::new(),
        }
    }

    fn complete(&self, result: Result<Arc<KernelArtifact>, CompileError>) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        *state = InflightState::Done(result);
        self.ready.notify_all();
    }

    fn abandon(&self) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if matches!(*state, InflightState::Pending) {
            *state = InflightState::Abandoned;
        }
        self.ready.notify_all();
    }

    /// Blocks until the synthesis finishes or `deadline` passes.
    fn wait(&self, deadline: Option<Instant>) -> WaitOutcome {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            match &*state {
                InflightState::Pending => match deadline {
                    None => {
                        state = self.ready.wait(state).unwrap_or_else(|p| p.into_inner());
                    }
                    Some(dl) => {
                        let now = Instant::now();
                        if now >= dl {
                            return WaitOutcome::TimedOut;
                        }
                        let (s, _) = self
                            .ready
                            .wait_timeout(state, dl - now)
                            .unwrap_or_else(|p| p.into_inner());
                        state = s;
                    }
                },
                InflightState::Done(result) => return WaitOutcome::Done(result.clone()),
                InflightState::Abandoned => return WaitOutcome::Abandoned,
            }
        }
    }
}

/// What a coalesced waiter observed.
enum WaitOutcome {
    /// The claimant finished; the shared result (which may be a retryable
    /// [`CompileError::Panicked`]) is cloned to every waiter.
    Done(Result<Arc<KernelArtifact>, CompileError>),
    /// The claimant unwound without completing (defensive backstop — a
    /// panicked synthesis normally completes with `Panicked`): retry.
    Abandoned,
    /// The waiter's deadline passed first.
    TimedOut,
}

/// Removes the in-flight entry (and wakes joiners) even if the claiming
/// request unwinds mid-synthesis, so joiners never block forever.
struct ClaimGuard<'a> {
    service: &'a CompileService,
    fingerprint: u64,
    entry: Arc<Inflight>,
    completed: bool,
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.entry.abandon();
        }
        self.service
            .inflight
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&self.fingerprint);
    }
}

// ---------------------------------------------------------------------------
// Watchdog supervision.
// ---------------------------------------------------------------------------

/// One in-flight synthesis under supervision.
#[derive(Debug)]
struct Watch {
    token: CancelToken,
    /// When the synthesis started (watchdog budget counts from here).
    synth_start: Instant,
    /// The owning request's absolute deadline, if any.
    deadline: Option<Instant>,
}

/// Shared state between the service and its (lazily spawned) watchdog
/// thread: the registry of in-flight syntheses and the trip counter.
#[derive(Debug)]
struct Supervisor {
    registry: Mutex<HashMap<u64, Watch>>,
    /// Per-synthesis wall-clock budget ([`ServiceConfig::watchdog`]).
    watchdog: Option<Duration>,
    watchdog_trips: AtomicU64,
    thread_spawned: AtomicBool,
}

/// How often the watchdog thread scans the registry. Cancellation latency
/// is bounded by this scan interval plus the search's poll granularity.
const SUPERVISOR_SCAN_INTERVAL: Duration = Duration::from_millis(1);

impl Supervisor {
    fn new(watchdog: Option<Duration>) -> Self {
        Supervisor {
            registry: Mutex::new(HashMap::new()),
            watchdog,
            watchdog_trips: AtomicU64::new(0),
            thread_spawned: AtomicBool::new(false),
        }
    }

    /// Whether any supervised trigger is configured — if not, registered
    /// watches only serve the shutdown path and no thread is needed.
    fn needs_thread(&self, deadline: Option<Instant>) -> bool {
        deadline.is_some() || self.watchdog.is_some()
    }

    /// Registers `fingerprint`'s synthesis and lazily spawns the scanner
    /// thread the first time a watch actually needs one. The thread holds a
    /// [`Weak`] reference and exits when the service is dropped.
    fn register(self: &Arc<Self>, fingerprint: u64, watch: Watch) {
        let needs_thread = self.needs_thread(watch.deadline);
        self.registry
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(fingerprint, watch);
        if needs_thread && !self.thread_spawned.swap(true, Ordering::SeqCst) {
            let weak: Weak<Supervisor> = Arc::downgrade(self);
            std::thread::Builder::new()
                .name("hexcute-watchdog".into())
                .spawn(move || Supervisor::run(weak))
                .expect("spawning the watchdog thread");
        }
    }

    fn unregister(&self, fingerprint: u64) {
        self.registry
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&fingerprint);
    }

    /// The scanner loop: every [`SUPERVISOR_SCAN_INTERVAL`], trip tokens
    /// whose deadline has passed or whose synthesis has outlived the
    /// watchdog budget. First cancel wins, so a request whose deadline and
    /// the watchdog race reports one coherent reason.
    fn run(weak: Weak<Supervisor>) {
        loop {
            let Some(supervisor) = weak.upgrade() else {
                return;
            };
            let now = Instant::now();
            {
                let registry = supervisor
                    .registry
                    .lock()
                    .unwrap_or_else(|p| p.into_inner());
                for watch in registry.values() {
                    if watch.deadline.is_some_and(|dl| now >= dl) {
                        watch.token.cancel(CancelReason::Deadline);
                    }
                    if let Some(budget) = supervisor.watchdog {
                        if now.duration_since(watch.synth_start) >= budget
                            && watch.token.cancel(CancelReason::Watchdog)
                        {
                            supervisor.watchdog_trips.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            drop(supervisor);
            std::thread::sleep(SUPERVISOR_SCAN_INTERVAL);
        }
    }

    /// Cancels every registered in-flight synthesis with the shutdown
    /// reason (the service is draining).
    fn cancel_all_for_shutdown(&self) {
        let registry = self.registry.lock().unwrap_or_else(|p| p.into_inner());
        for watch in registry.values() {
            watch.token.cancel(CancelReason::Shutdown);
        }
    }
}

// ---------------------------------------------------------------------------
// Speculative precompilation.
// ---------------------------------------------------------------------------

/// Consecutive observations of a fingerprint transition before its successor
/// is considered a prediction worth prefetching.
const PREFETCH_MIN_OBSERVATIONS: u32 = 2;
/// Programs retained for speculative re-synthesis (a fingerprint whose
/// program was never captured can still be warmed by disk promotion).
const PREFETCH_PROGRAM_CAP: usize = 512;

/// The request-stream miner behind speculative precompilation: a first-order
/// Markov model over artifact fingerprints. Serving traffic repeats short
/// sequences (the per-decode-step kernel set of a model), so after a
/// transition `A → B` has been seen [`PREFETCH_MIN_OBSERVATIONS`] times, a
/// request for `A` predicts `B` and a background job warms `B` — disk
/// promotion or a full speculative synthesis — on *spare* capacity
/// ([`Admission::try_acquire_spare`], [`hexcute_parallel::spawn_background`])
/// before `B` is requested.
struct PrefetchState {
    /// `transitions[a][b]` = times a request for `b` directly followed one
    /// for `a` (self-transitions excluded).
    transitions: Mutex<HashMap<u64, HashMap<u64, u32>>>,
    /// The previous request's fingerprint (the Markov state).
    last_fingerprint: Mutex<Option<u64>>,
    /// Programs seen so far, for speculative re-synthesis of cold
    /// predictions. Bounded by [`PREFETCH_PROGRAM_CAP`].
    programs: Mutex<HashMap<u64, Program>>,
    /// Fingerprints with a prefetch job currently queued or running
    /// (dedup so a hot transition does not fan out duplicate jobs).
    inflight: Mutex<HashSet<u64>>,
    /// Fingerprints whose memory-tier entry was placed by a prefetch and
    /// not yet claimed by a demand hit; a demand memory hit that removes
    /// one counts as a `prefetch_hits`.
    warmed: Mutex<HashSet<u64>>,
    /// Trips on service shutdown: in-flight speculative syntheses abort and
    /// no new ones start.
    cancel: CancelToken,
    issued: AtomicU64,
    warmed_count: AtomicU64,
    dropped: AtomicU64,
    hits: AtomicU64,
}

impl fmt::Debug for PrefetchState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PrefetchState")
            .field("issued", &self.issued.load(Ordering::Relaxed))
            .field("warmed", &self.warmed_count.load(Ordering::Relaxed))
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl PrefetchState {
    fn new() -> Self {
        PrefetchState {
            transitions: Mutex::new(HashMap::new()),
            last_fingerprint: Mutex::new(None),
            programs: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashSet::new()),
            warmed: Mutex::new(HashSet::new()),
            cancel: CancelToken::new(),
            issued: AtomicU64::new(0),
            warmed_count: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }
}

/// A compile front-end for one target architecture: an artifact cache, a
/// request-coalescing layer and pool-backed batch compilation. The service
/// is `Sync` — one instance serves concurrent requests from many threads.
/// See the [module docs](self) for the serving rationale and an example.
#[derive(Debug)]
pub struct CompileService {
    // `Arc`s so speculative background jobs can hold `Weak` handles that
    // die with the service instead of borrowing from it.
    compiler: Arc<Compiler>,
    cache: Arc<KernelCache>,
    config: ServiceConfig,
    admission: Arc<Admission>,
    prefetch: Option<Arc<PrefetchState>>,
    inflight: Mutex<HashMap<u64, Arc<Inflight>>>,
    requests: AtomicU64,
    background_requests: AtomicU64,
    coalesced: AtomicU64,
    syntheses: AtomicU64,
    batches: AtomicU64,
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    retries: AtomicU64,
    synth_panics: AtomicU64,
    cancelled: AtomicU64,
    shutdown_drained: AtomicU64,
    jitter_ticket: AtomicU64,
    supervisor: Arc<Supervisor>,
    shutdown: AtomicBool,
    /// Cancel-to-worker-free latencies: how long each cancelled synthesis
    /// held its admission slot past the cancel, sampled as the claimant
    /// releases it.
    cancel_free: Mutex<Vec<Duration>>,
}

impl CompileService {
    /// A service for `arch` with default compiler options and a
    /// **memory-only** cache (no files are touched). Use
    /// [`CompileService::with_config`] or [`CompileService::from_env`] for a
    /// persistent disk store.
    pub fn new(arch: GpuArch) -> Self {
        Self::with_config(arch, CompilerOptions::new(), KernelCacheConfig::default())
    }

    /// A service with explicit compiler options and cache configuration,
    /// and the default (fully permissive) admission policy.
    pub fn with_config(
        arch: GpuArch,
        options: CompilerOptions,
        cache_config: KernelCacheConfig,
    ) -> Self {
        Self::with_service_config(arch, options, cache_config, ServiceConfig::default())
    }

    /// A service with explicit compiler options, cache configuration and
    /// admission/deadline/retry policy. The policy's fault injector (if
    /// any) is threaded into the artifact cache too, so one schedule drives
    /// the whole serving stack.
    pub fn with_service_config(
        arch: GpuArch,
        options: CompilerOptions,
        cache_config: KernelCacheConfig,
        config: ServiceConfig,
    ) -> Self {
        faults::install_global_pool_hook();
        faults::install_global_synth_hook();
        let cache = Arc::new(KernelCache::with_faults(
            cache_config,
            config.faults.clone(),
        ));
        let admission = Arc::new(Admission::new(&config));
        let prefetch = config.prefetch.then(|| Arc::new(PrefetchState::new()));
        let supervisor = Arc::new(Supervisor::new(config.watchdog));
        CompileService {
            compiler: Arc::new(Compiler::with_options(arch, options)),
            cache,
            config,
            admission,
            prefetch,
            inflight: Mutex::new(HashMap::new()),
            requests: AtomicU64::new(0),
            background_requests: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            syntheses: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            synth_panics: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            shutdown_drained: AtomicU64::new(0),
            jitter_ticket: AtomicU64::new(0),
            supervisor,
            shutdown: AtomicBool::new(false),
            cancel_free: Mutex::new(Vec::new()),
        }
    }

    /// A service whose cache reads the `HEXCUTE_CACHE_*` environment
    /// variables and whose admission policy reads `HEXCUTE_SERVICE_*` (see
    /// [`KernelCacheConfig::from_env`] and [`ServiceConfig::from_env`]).
    pub fn from_env(arch: GpuArch) -> Self {
        Self::with_service_config(
            arch,
            CompilerOptions::new(),
            KernelCacheConfig::from_env(),
            ServiceConfig::from_env(),
        )
    }

    /// The active admission/deadline/retry policy.
    pub fn service_config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The target architecture.
    pub fn arch(&self) -> &GpuArch {
        self.compiler.arch()
    }

    /// The underlying artifact cache.
    pub fn cache(&self) -> &KernelCache {
        &self.cache
    }

    /// Serves one compilation: answered from the cache when possible,
    /// coalesced onto an in-flight synthesis of the same fingerprint when
    /// one exists, synthesized (and stored) otherwise — under the service's
    /// admission, deadline and retry policy.
    ///
    /// # Errors
    ///
    /// [`CompileError::Overloaded`] when the admission queue is full,
    /// [`CompileError::DeadlineExceeded`] when the configured deadline
    /// passes while queued or coalesced, [`CompileError::Panicked`] when a
    /// synthesis crashed and the retry budget is exhausted, and the
    /// underlying synthesis error otherwise. Errors are shared by every
    /// coalesced requester of the same fingerprint and are never cached — a
    /// later request retries.
    pub fn compile(&self, program: &Program) -> Result<CompileResponse, CompileError> {
        self.compile_as(program, Priority::LatencyCritical, TenantId::default())
    }

    /// [`CompileService::compile`] with an explicit scheduling class and
    /// tenant identity: background-class requests queue separately and
    /// yield to latency-critical traffic (boosted periodically so they are
    /// never starved), and `tenant` drives the weighted-fair grant order
    /// plus the optional [`ServiceConfig::tenant_quota`]. Scheduling only
    /// reorders *when* a synthesis runs, never what it produces — artifacts
    /// stay bit-identical across classes, tenants and thread counts.
    pub fn compile_as(
        &self,
        program: &Program,
        priority: Priority,
        tenant: TenantId,
    ) -> Result<CompileResponse, CompileError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if priority == Priority::Background {
            self.background_requests.fetch_add(1, Ordering::Relaxed);
        }
        if self.shutdown.load(Ordering::SeqCst) {
            self.shutdown_drained.fetch_add(1, Ordering::Relaxed);
            return Err(CompileError::Cancelled {
                reason: CancelReason::Shutdown,
            });
        }
        let fingerprint = self.compiler.artifact_fingerprint(program);
        self.observe_for_prefetch(fingerprint, program);
        let start = Instant::now();
        let deadline = self.config.deadline.map(|d| start + d);
        let mut attempt = 0usize;
        let result = loop {
            match self.compile_attempt(program, fingerprint, start, deadline, priority, tenant) {
                Err(e) if e.is_transient() && attempt < self.config.max_retries => {
                    attempt += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    let backoff = self.backoff(attempt);
                    if let Some(dl) = deadline {
                        if Instant::now() + backoff >= dl {
                            break Err(CompileError::DeadlineExceeded {
                                elapsed: start.elapsed(),
                            });
                        }
                    }
                    std::thread::sleep(backoff);
                }
                other => break other,
            }
        };
        match &result {
            Err(CompileError::Overloaded { .. }) => {
                self.shed.fetch_add(1, Ordering::Relaxed);
            }
            Err(CompileError::DeadlineExceeded { .. }) => {
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            Err(CompileError::Cancelled {
                reason: CancelReason::Shutdown,
            }) => {
                self.shutdown_drained.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        result
    }

    /// Exponential backoff with deterministic seeded jitter: retry `n`
    /// sleeps `base * 2^(n-1) + jitter`, `jitter ∈ [0, base)` drawn from a
    /// SplitMix64 stream over (seed, ticket) so chaos runs replay exactly.
    fn backoff(&self, attempt: usize) -> Duration {
        let base = self.config.retry_backoff;
        if base.is_zero() {
            return Duration::ZERO;
        }
        let exp = base.saturating_mul(1u32 << (attempt - 1).min(16) as u32);
        let ticket = self.jitter_ticket.fetch_add(1, Ordering::Relaxed);
        let mut z = self
            .config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(ticket)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let jitter = Duration::from_nanos(z % base.as_nanos().max(1) as u64);
        exp + jitter
    }

    /// Feeds one request into the prefetch miner and spawns background
    /// warmers for any successor predicted by the transition model. No-op
    /// unless [`ServiceConfig::prefetch`] is enabled.
    fn observe_for_prefetch(&self, fingerprint: u64, program: &Program) {
        let Some(prefetch) = &self.prefetch else {
            return;
        };
        if prefetch.cancel.is_cancelled() {
            return;
        }
        {
            let mut programs = prefetch.programs.lock().unwrap_or_else(|p| p.into_inner());
            if programs.len() < PREFETCH_PROGRAM_CAP || programs.contains_key(&fingerprint) {
                programs.insert(fingerprint, program.clone());
            }
        }
        let previous = prefetch
            .last_fingerprint
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .replace(fingerprint);
        let predictions: Vec<u64> = {
            let mut transitions = prefetch
                .transitions
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            if let Some(prev) = previous {
                if prev != fingerprint {
                    *transitions
                        .entry(prev)
                        .or_default()
                        .entry(fingerprint)
                        .or_insert(0) += 1;
                }
            }
            transitions
                .get(&fingerprint)
                .map(|successors| {
                    successors
                        .iter()
                        .filter(|(_, &count)| count >= PREFETCH_MIN_OBSERVATIONS)
                        .map(|(&fp, _)| fp)
                        .collect()
                })
                .unwrap_or_default()
        };
        for predicted in predictions {
            self.spawn_prefetch(prefetch, predicted);
        }
    }

    /// Queues a background job that warms `fingerprint` — disk promotion or
    /// a speculative synthesis — if spare admission capacity exists when
    /// the job runs. Holds only `Weak` handles so a dropped service (or its
    /// shutdown cancel) quietly retires pending jobs.
    fn spawn_prefetch(&self, prefetch: &Arc<PrefetchState>, fingerprint: u64) {
        if self.cache.peek_memory(fingerprint) {
            return;
        }
        if !prefetch
            .inflight
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(fingerprint)
        {
            return;
        }
        prefetch.issued.fetch_add(1, Ordering::Relaxed);
        let prefetch = Arc::downgrade(prefetch);
        let cache = Arc::downgrade(&self.cache);
        let compiler = Arc::downgrade(&self.compiler);
        let admission = Arc::downgrade(&self.admission);
        hexcute_parallel::spawn_background(move || {
            let (Some(prefetch), Some(cache), Some(compiler), Some(admission)) = (
                prefetch.upgrade(),
                cache.upgrade(),
                compiler.upgrade(),
                admission.upgrade(),
            ) else {
                return;
            };
            let mut warmed = false;
            if !prefetch.cancel.is_cancelled() {
                if let Some(permit) = admission.try_acquire_spare() {
                    let program = prefetch
                        .programs
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .get(&fingerprint)
                        .cloned();
                    warmed = cache.prefetch_with(fingerprint, || {
                        let program = program?;
                        compiler
                            .compile_artifact_cancellable(&program, Some(&prefetch.cancel))
                            .ok()
                            .map(Arc::new)
                    });
                    drop(permit);
                }
            }
            if warmed {
                prefetch.warmed_count.fetch_add(1, Ordering::Relaxed);
                prefetch
                    .warmed
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .insert(fingerprint);
            } else {
                prefetch.dropped.fetch_add(1, Ordering::Relaxed);
            }
            prefetch
                .inflight
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .remove(&fingerprint);
        });
    }

    /// Attributes a demand memory hit to the prefetch that placed it, if
    /// one did (the "did speculation actually earn anything" counter).
    fn note_cache_hit(&self, fingerprint: u64, source: ArtifactSource) {
        let Some(prefetch) = &self.prefetch else {
            return;
        };
        if source == ArtifactSource::Memory
            && prefetch
                .warmed
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .remove(&fingerprint)
        {
            prefetch.hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One admission-gated attempt at serving `fingerprint`.
    fn compile_attempt(
        &self,
        program: &Program,
        fingerprint: u64,
        start: Instant,
        deadline: Option<Instant>,
        priority: Priority,
        tenant: TenantId,
    ) -> Result<CompileResponse, CompileError> {
        loop {
            if let Some((artifact, source)) = self.cache.get(fingerprint) {
                self.note_cache_hit(fingerprint, source);
                return Ok(CompileResponse {
                    artifact,
                    served_from: source.into(),
                });
            }
            if deadline.is_some_and(|dl| Instant::now() >= dl) {
                return Err(CompileError::DeadlineExceeded {
                    elapsed: start.elapsed(),
                });
            }
            // Admission bounds the synthesis path only; the cache hit above
            // never queues.
            let permit = self.admission.acquire(priority, tenant, start, deadline)?;
            let claim = {
                let mut inflight = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
                // Re-check under the map lock: a claimant inserts into the
                // cache *before* retiring its in-flight entry, so a request
                // arriving in between must not start a second synthesis.
                if let Some((artifact, source)) = self.cache.get(fingerprint) {
                    self.note_cache_hit(fingerprint, source);
                    return Ok(CompileResponse {
                        artifact,
                        served_from: source.into(),
                    });
                }
                match inflight.get(&fingerprint) {
                    Some(entry) => Err(entry.clone()),
                    None => {
                        let entry = Arc::new(Inflight::new());
                        inflight.insert(fingerprint, entry.clone());
                        Ok(entry)
                    }
                }
            };
            match claim {
                Err(entry) => {
                    // A coalesced waiter consumes no synthesis slot: release
                    // it before parking so admission capacity tracks actual
                    // work, not waiters.
                    drop(permit);
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    match entry.wait(deadline) {
                        WaitOutcome::Done(result) => {
                            return result.map(|artifact| CompileResponse {
                                artifact,
                                served_from: ServedFrom::Coalesced,
                            });
                        }
                        // The claimant unwound without a result: retry.
                        WaitOutcome::Abandoned => continue,
                        WaitOutcome::TimedOut => {
                            return Err(CompileError::DeadlineExceeded {
                                elapsed: start.elapsed(),
                            });
                        }
                    }
                }
                Ok(entry) => {
                    let mut guard = ClaimGuard {
                        service: self,
                        fingerprint,
                        entry,
                        completed: false,
                    };
                    self.syntheses.fetch_add(1, Ordering::Relaxed);
                    // Put the synthesis under supervision: its token is
                    // tripped by the watchdog thread (deadline/runaway) or
                    // by `shutdown`, and the search walks poll it at row
                    // granularity.
                    let token = CancelToken::new();
                    let synth_start = Instant::now();
                    self.supervisor.register(
                        fingerprint,
                        Watch {
                            token: token.clone(),
                            synth_start,
                            deadline,
                        },
                    );
                    // A shutdown racing this registration may have swept
                    // the registry already; re-check the flag so the new
                    // synthesis is cancelled either way.
                    if self.shutdown.load(Ordering::SeqCst) {
                        token.cancel(CancelReason::Shutdown);
                    }
                    // A panicking synthesis (worker-job crash, injected
                    // fault) must not strand coalesced waiters: catch the
                    // unwind and broadcast a retryable error through the
                    // normal completion path. The `ClaimGuard` abandon
                    // remains as a backstop for panics outside this scope.
                    let result = panic::catch_unwind(AssertUnwindSafe(|| {
                        if let Some(f) = &self.config.faults {
                            if f.should(FaultKind::SynthPanic) {
                                panic!("injected: synthesis panic");
                            }
                        }
                        self.compiler
                            .compile_artifact_cancellable(program, Some(&token))
                            .map(Arc::new)
                    }))
                    .unwrap_or_else(|payload| {
                        self.synth_panics.fetch_add(1, Ordering::Relaxed);
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        Err(CompileError::Panicked(msg))
                    });
                    self.supervisor.unregister(fingerprint);
                    // Map the raw cancellation onto the trigger's typed
                    // error: a tripped deadline reads as the deadline
                    // error waiters already understand, a watchdog trip as
                    // a synthesis timeout; shutdown keeps its reason.
                    let result = result.map_err(|error| match error {
                        CompileError::Cancelled {
                            reason: CancelReason::Deadline,
                        } => CompileError::DeadlineExceeded {
                            elapsed: start.elapsed(),
                        },
                        CompileError::Cancelled {
                            reason: CancelReason::Watchdog,
                        } => CompileError::SynthesisTimeout {
                            elapsed: synth_start.elapsed(),
                        },
                        other => other,
                    });
                    // A cancelled synthesis yields a typed error only —
                    // the `Err` below never reaches `cache.insert`, so a
                    // cancel can never alter or cache a result.
                    if let Ok(artifact) = &result {
                        self.cache.insert(artifact.clone());
                    }
                    guard.entry.complete(result.clone());
                    guard.completed = true;
                    drop(guard);
                    if matches!(
                        result,
                        Err(CompileError::Cancelled { .. }
                            | CompileError::DeadlineExceeded { .. }
                            | CompileError::SynthesisTimeout { .. })
                    ) {
                        self.cancelled.fetch_add(1, Ordering::Relaxed);
                    }
                    // Sample cancel-to-worker-free latency at the moment
                    // the slot is released (the permit drops next).
                    if let Some(latency) = token.since_cancelled() {
                        self.cancel_free
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .push(latency);
                    }
                    drop(permit);
                    return result.map(|artifact| CompileResponse {
                        artifact,
                        served_from: ServedFrom::Synthesized,
                    });
                }
            }
        }
    }

    /// Serves a batch of compilations concurrently on the persistent worker
    /// pool. Distinct fingerprints synthesize in parallel; duplicate
    /// fingerprints within the batch coalesce onto one synthesis. Results
    /// are returned in request order.
    pub fn compile_batch(
        &self,
        programs: Vec<Program>,
    ) -> Vec<Result<CompileResponse, CompileError>> {
        self.compile_batch_as(programs, Priority::LatencyCritical, TenantId::default())
    }

    /// [`CompileService::compile_batch`] with an explicit scheduling class
    /// and tenant for every member (autotune sweeps submit as
    /// [`Priority::Background`] so they never crowd out decode compiles).
    pub fn compile_batch_as(
        &self,
        programs: Vec<Program>,
        priority: Priority,
        tenant: TenantId,
    ) -> Vec<Result<CompileResponse, CompileError>> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        hexcute_parallel::par_map(programs, |program| {
            self.compile_as(&program, priority, tenant)
        })
    }

    /// Gracefully shuts the service down: new requests are rejected with a
    /// typed shutdown cancellation, parked admission waiters drain out with
    /// the same error, every in-flight synthesis is cooperatively
    /// cancelled, and the call waits (bounded) for the in-flight map to
    /// empty so callers can observe "no leaked slots" deterministically.
    /// Idempotent — later calls return immediately.
    pub fn shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(prefetch) = &self.prefetch {
            // Speculative work aborts too: queued background jobs see the
            // cancel and retire without compiling.
            prefetch.cancel.cancel(CancelReason::Shutdown);
        }
        self.supervisor.cancel_all_for_shutdown();
        self.admission.shutdown();
        // Bounded drain: in-flight claimants poll their tokens at row
        // granularity, so they unwind within a poll interval each. The cap
        // only guards against a wedged (non-cooperative) synthesis.
        let drain_deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < drain_deadline {
            let drained = self
                .inflight
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .is_empty();
            if drained {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Whether [`CompileService::shutdown`] has begun.
    pub fn is_shut_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Cancel-to-worker-free latencies observed so far: for each cancelled
    /// synthesis, how long it held its admission slot after its token
    /// tripped (cancel-poll granularity plus unwind time). The robustness
    /// bench asserts a p99 bound over these.
    pub fn cancel_to_free_latencies(&self) -> Vec<Duration> {
        self.cancel_free
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// A snapshot of the service and cache counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.requests.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            syntheses: self.syntheses.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            synth_panics: self.synth_panics.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            watchdog_trips: self.supervisor.watchdog_trips.load(Ordering::Relaxed),
            shutdown_drained: self.shutdown_drained.load(Ordering::Relaxed),
            max_queue_depth: self.admission.max_queue_depth.load(Ordering::Relaxed),
            queue_depth: self.admission.queue_depth(),
            background_requests: self.background_requests.load(Ordering::Relaxed),
            background_boosts: self.admission.background_boosts.load(Ordering::Relaxed),
            priority_inversions: self.admission.priority_inversions.load(Ordering::Relaxed),
            prefetch_issued: self
                .prefetch
                .as_ref()
                .map_or(0, |p| p.issued.load(Ordering::Relaxed)),
            prefetch_warmed: self
                .prefetch
                .as_ref()
                .map_or(0, |p| p.warmed_count.load(Ordering::Relaxed)),
            prefetch_dropped: self
                .prefetch
                .as_ref()
                .map_or(0, |p| p.dropped.load(Ordering::Relaxed)),
            prefetch_hits: self
                .prefetch
                .as_ref()
                .map_or(0, |p| p.hits.load(Ordering::Relaxed)),
            cache: self.cache.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hexcute_arch::DType;
    use hexcute_ir::KernelBuilder;
    use hexcute_kernels::attention::{mha_forward, AttentionConfig, AttentionShape};
    use hexcute_kernels::gemm::{fp16_gemm, GemmConfig, GemmShape};
    use hexcute_layout::Layout;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    fn small_program(name: &str) -> Program {
        let mut kb = KernelBuilder::new(name, 128);
        let x = kb.global_view("x", DType::F32, Layout::row_major(&[64, 64]), &[64, 64]);
        let y = kb.global_view("y", DType::F32, Layout::row_major(&[64, 64]), &[64, 64]);
        let r = kb.register_tensor("r", DType::F32, &[64, 64]);
        kb.copy(x, r);
        kb.copy(r, y);
        kb.build().unwrap()
    }

    fn unique_temp_dir(tag: &str) -> std::path::PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "hexcute-service-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn concurrent_same_key_requests_coalesce_to_one_synthesis() {
        let service = CompileService::new(GpuArch::a100());
        let program = fp16_gemm(GemmShape::new(1024, 1024, 1024), GemmConfig::default()).unwrap();
        let threads = 8;
        let barrier = Barrier::new(threads);
        let artifacts: Vec<Arc<KernelArtifact>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        service.compile(&program).unwrap().artifact
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let stats = service.stats();
        assert_eq!(stats.requests, threads as u64);
        assert_eq!(
            stats.syntheses, 1,
            "concurrent requests for one fingerprint must coalesce: {stats}"
        );
        for artifact in &artifacts[1..] {
            assert_eq!(**artifact, *artifacts[0]);
        }
    }

    #[test]
    fn batch_deduplicates_and_preserves_order() {
        let service = CompileService::new(GpuArch::a100());
        let a = small_program("batch_a");
        let b = small_program("batch_b");
        let batch = vec![a.clone(), b.clone(), a.clone(), b.clone(), a.clone()];
        let responses = service.compile_batch(batch);
        assert_eq!(responses.len(), 5);
        let artifacts: Vec<_> = responses.into_iter().map(|r| r.unwrap().artifact).collect();
        assert_eq!(artifacts[0].kernel, "batch_a");
        assert_eq!(artifacts[1].kernel, "batch_b");
        assert_eq!(*artifacts[0], *artifacts[2]);
        assert_eq!(*artifacts[0], *artifacts[4]);
        assert_eq!(*artifacts[1], *artifacts[3]);
        let stats = service.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.requests, 5);
        assert_eq!(
            stats.syntheses, 2,
            "three duplicate requests must be served without re-synthesis: {stats}"
        );
    }

    #[test]
    fn distinct_options_get_distinct_artifacts() {
        let arch = GpuArch::a100();
        let program = small_program("options_sensitive");
        let default = CompileService::new(arch.clone());
        let scalar = CompileService::with_config(
            arch,
            CompilerOptions {
                synthesis: hexcute_core::SynthesisOptions::scalar_fallback(),
                use_cost_model: true,
            },
            KernelCacheConfig::default(),
        );
        let d = default.compile(&program).unwrap();
        let s = scalar.compile(&program).unwrap();
        assert_ne!(d.artifact.fingerprint, s.artifact.fingerprint);
    }

    #[test]
    fn disk_store_survives_a_service_restart() {
        let dir = unique_temp_dir("restart");
        let config = KernelCacheConfig {
            dir: Some(dir.clone()),
            ..KernelCacheConfig::default()
        };
        let program = mha_forward(
            AttentionShape::decoding(4, 8, 512, 64),
            AttentionConfig::default(),
        )
        .unwrap();
        let first =
            CompileService::with_config(GpuArch::h100(), CompilerOptions::new(), config.clone());
        let cold = first.compile(&program).unwrap();
        assert_eq!(cold.served_from, ServedFrom::Synthesized);
        drop(first);

        // A fresh service (fresh memory front) over the same directory
        // serves the artifact from disk, bit-identically.
        let second = CompileService::with_config(GpuArch::h100(), CompilerOptions::new(), config);
        let warm = second.compile(&program).unwrap();
        assert_eq!(warm.served_from, ServedFrom::Disk);
        assert_eq!(*warm.artifact, *cold.artifact);
        assert_eq!(second.stats().syntheses, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quant_and_grouped_families_serve_through_the_cache_bit_identically() {
        use hexcute_kernels::grouped_gemm::{grouped_gemm, GroupedGemmConfig, GroupedGemmShape};
        use hexcute_kernels::quant_gemm::{w4a16_gemm, QuantGemmConfig, QuantGemmShape};

        let dir = unique_temp_dir("families");
        let config = KernelCacheConfig {
            dir: Some(dir.clone()),
            ..KernelCacheConfig::default()
        };
        let quant = w4a16_gemm(
            QuantGemmShape::new(16, 128, 256, 64),
            QuantGemmConfig::default(),
        )
        .unwrap();
        let grouped = grouped_gemm(
            &GroupedGemmShape::uniform(8, 16, 256, 512),
            GroupedGemmConfig::default(),
        )
        .unwrap();

        let service =
            CompileService::with_config(GpuArch::h100(), CompilerOptions::new(), config.clone());
        // A batch over both families: two syntheses, duplicates coalesce.
        let responses = service.compile_batch(vec![
            quant.clone(),
            grouped.clone(),
            quant.clone(),
            grouped.clone(),
        ]);
        let artifacts: Vec<_> = responses.into_iter().map(|r| r.unwrap().artifact).collect();
        assert_eq!(service.stats().syntheses, 2);
        assert_eq!(*artifacts[0], *artifacts[2]);
        assert_eq!(*artifacts[1], *artifacts[3]);
        assert_eq!(artifacts[0].kernel, "w4a16_gemm");
        assert_eq!(artifacts[1].kernel, "grouped_gemm");
        // The artifacts carry the new pipeline features end to end.
        assert!(
            artifacts[0].cuda.contains("dequant"),
            "{}",
            artifacts[0].cuda
        );
        assert!(artifacts[0]
            .lowered
            .iter()
            .any(|line| line.contains("unpack")));

        // Warm memory hits are bit-identical.
        let warm = service.compile(&quant).unwrap();
        assert_eq!(warm.served_from, ServedFrom::Memory);
        assert_eq!(*warm.artifact, *artifacts[0]);

        // A restart (fresh memory front, same directory) serves both
        // families from disk, bit-identically, with zero syntheses.
        let restarted =
            CompileService::with_config(GpuArch::h100(), CompilerOptions::new(), config);
        let disk_quant = restarted.compile(&quant).unwrap();
        let disk_grouped = restarted.compile(&grouped).unwrap();
        assert_eq!(disk_quant.served_from, ServedFrom::Disk);
        assert_eq!(disk_grouped.served_from, ServedFrom::Disk);
        assert_eq!(*disk_quant.artifact, *artifacts[0]);
        assert_eq!(*disk_grouped.artifact, *artifacts[1]);
        assert_eq!(restarted.stats().syntheses, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shutdown_rejects_new_requests_with_a_typed_error() {
        let service = CompileService::new(GpuArch::a100());
        let program = small_program("shutdown_entry");
        service.shutdown();
        match service.compile(&program) {
            Err(CompileError::Cancelled {
                reason: CancelReason::Shutdown,
            }) => {}
            other => panic!("expected a typed shutdown cancellation, got {other:?}"),
        }
        let stats = service.stats();
        assert_eq!(stats.shutdown_drained, 1, "{stats}");
        assert_eq!(stats.syntheses, 0, "no synthesis may start after shutdown");
        // Idempotent.
        service.shutdown();
        assert!(service.is_shut_down());
    }

    #[test]
    fn watchdog_trips_a_runaway_synthesis_with_a_typed_timeout() {
        // A large GEMM search runs far longer than a 1 ms watchdog budget;
        // the supervisor must trip it and the claimant must return
        // `SynthesisTimeout` without caching anything.
        let service = CompileService::with_service_config(
            GpuArch::a100(),
            CompilerOptions::new(),
            KernelCacheConfig::default(),
            ServiceConfig {
                watchdog: Some(Duration::from_millis(1)),
                ..ServiceConfig::default()
            },
        );
        let program = fp16_gemm(GemmShape::new(1024, 1024, 1024), GemmConfig::default()).unwrap();
        match service.compile(&program) {
            Err(CompileError::SynthesisTimeout { elapsed }) => {
                assert!(elapsed >= Duration::from_millis(1), "{elapsed:?}");
            }
            other => panic!("expected a watchdog timeout, got {other:?}"),
        }
        let stats = service.stats();
        assert_eq!(stats.watchdog_trips, 1, "{stats}");
        assert_eq!(stats.cancelled, 1, "{stats}");
        assert_eq!(
            stats.cache.memory.entries, 0,
            "a cancelled synthesis must never cache: {stats}"
        );
        assert!(
            !service.cancel_to_free_latencies().is_empty(),
            "the cancelled claimant must record its cancel-to-free latency"
        );
    }

    #[test]
    fn synthesis_errors_are_not_cached() {
        // An empty program fails synthesis; the failure must propagate and a
        // subsequent request must retry (not serve a cached error).
        let service = CompileService::new(GpuArch::a100());
        let program = KernelBuilder::new("empty", 128).build();
        if let Ok(program) = program {
            let first = service.compile(&program);
            let second = service.compile(&program);
            match (first, second) {
                (Err(_), Err(_)) => {
                    assert_eq!(service.stats().syntheses, 2, "errors must not be cached");
                }
                (Ok(_), Ok(_)) => {
                    assert_eq!(service.stats().syntheses, 1);
                }
                other => panic!("inconsistent results across identical requests: {other:?}"),
            }
        }
    }

    #[test]
    fn admission_fast_path_rejects_acquire_after_shutdown() {
        // Regression: the old gate only checked `shutdown` inside the wait
        // loop, so a post-shutdown request that found a free slot was
        // granted one and started a fresh synthesis on a draining service.
        let config = ServiceConfig {
            max_concurrent: 2,
            ..ServiceConfig::default()
        };
        let admission = Admission::new(&config);
        let held = admission
            .acquire(Priority::LatencyCritical, TenantId(0), Instant::now(), None)
            .unwrap();
        admission.shutdown();
        match admission.acquire(Priority::LatencyCritical, TenantId(0), Instant::now(), None) {
            Err(CompileError::Cancelled {
                reason: CancelReason::Shutdown,
            }) => {}
            Err(other) => panic!("expected a shutdown cancellation, got {other:?}"),
            Ok(_) => panic!("a free slot must not be granted after shutdown"),
        }
        drop(held);
    }

    #[test]
    fn shed_requests_raise_the_queue_depth_high_water_mark() {
        // Regression: the high-water mark was only sampled when a waiter
        // parked, so a zero-capacity queue that filled and shed reported
        // `max_queue_depth == 0` under overload.
        let config = ServiceConfig {
            max_concurrent: 1,
            queue_capacity: 0,
            ..ServiceConfig::default()
        };
        let admission = Admission::new(&config);
        let held = admission
            .acquire(Priority::LatencyCritical, TenantId(0), Instant::now(), None)
            .unwrap();
        assert_eq!(admission.max_queue_depth.load(Ordering::Relaxed), 0);
        match admission.acquire(Priority::LatencyCritical, TenantId(1), Instant::now(), None) {
            Err(CompileError::Overloaded {
                queued: 0,
                capacity: 0,
            }) => {}
            Err(other) => panic!("expected a typed overload, got {other:?}"),
            Ok(_) => panic!("a full (zero-capacity) queue must shed"),
        }
        assert_eq!(
            admission.max_queue_depth.load(Ordering::Relaxed),
            1,
            "a shed arrival must raise the high-water mark"
        );
        drop(held);
    }

    #[test]
    fn ticketed_queue_grants_fifo_with_periodic_background_boosts() {
        // One slot, held while six waiters queue up in a known ticket
        // order. Grants must be FIFO within each class, with exactly one
        // background boost after `boost_interval` consecutive latency
        // grants made over the parked background waiters' heads.
        let config = ServiceConfig {
            max_concurrent: 1,
            queue_capacity: 16,
            background_queue_capacity: 16,
            boost_interval: 2,
            ..ServiceConfig::default()
        };
        let admission = Admission::new(&config);
        let order: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            let holder = admission
                .acquire(Priority::LatencyCritical, TenantId(0), Instant::now(), None)
                .unwrap();
            let arrivals: [(Priority, &'static str); 6] = [
                (Priority::LatencyCritical, "L0"),
                (Priority::LatencyCritical, "L1"),
                (Priority::Background, "B0"),
                (Priority::LatencyCritical, "L2"),
                (Priority::Background, "B1"),
                (Priority::Background, "B2"),
            ];
            let mut expected_depth = 0usize;
            for (priority, label) in arrivals {
                let admission = &admission;
                let order = &order;
                scope.spawn(move || {
                    let permit = admission
                        .acquire(priority, TenantId(0), Instant::now(), None)
                        .unwrap();
                    order.lock().unwrap_or_else(|p| p.into_inner()).push(label);
                    drop(permit);
                });
                // Serialize arrivals so ticket order matches spawn order.
                expected_depth += 1;
                while admission.queue_depth() < expected_depth {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
            drop(holder);
        });
        let order = order.lock().unwrap_or_else(|p| p.into_inner());
        assert_eq!(
            *order,
            ["L0", "L1", "B0", "L2", "B1", "B2"],
            "expected FIFO-within-class with one boost after 2 latency grants"
        );
        assert_eq!(admission.background_boosts.load(Ordering::Relaxed), 1);
        assert_eq!(admission.priority_inversions.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn tenant_quota_parks_only_the_over_quota_tenant() {
        let config = ServiceConfig {
            max_concurrent: 4,
            tenant_quota: 2,
            ..ServiceConfig::default()
        };
        let admission = Admission::new(&config);
        let t1 = TenantId(1);
        let t2 = TenantId(2);
        let a = admission
            .acquire(Priority::LatencyCritical, t1, Instant::now(), None)
            .unwrap();
        let b = admission
            .acquire(Priority::LatencyCritical, t1, Instant::now(), None)
            .unwrap();
        std::thread::scope(|scope| {
            let admission = &admission;
            // Tenant 1 is at its quota: its third request parks despite two
            // free slots.
            let third = scope.spawn(move || {
                admission
                    .acquire(Priority::LatencyCritical, t1, Instant::now(), None)
                    .map(drop)
            });
            while admission.queue_depth() < 1 {
                std::thread::sleep(Duration::from_micros(50));
            }
            // An under-quota tenant is admitted immediately, straight past
            // the quota-blocked waiter.
            let c = admission
                .acquire(Priority::LatencyCritical, t2, Instant::now(), None)
                .unwrap();
            assert_eq!(
                admission.queue_depth(),
                1,
                "t1's third request stays parked"
            );
            drop(c);
            // Releasing one of tenant 1's slots un-blocks its parked waiter.
            drop(a);
            third.join().unwrap().unwrap();
        });
        drop(b);
    }

    #[test]
    fn weighted_fairness_prefers_the_less_loaded_tenant() {
        let config = ServiceConfig {
            max_concurrent: 2,
            ..ServiceConfig::default()
        };
        let admission = Admission::new(&config);
        let t1 = TenantId(1);
        let t2 = TenantId(2);
        let t1_held = admission
            .acquire(Priority::LatencyCritical, t1, Instant::now(), None)
            .unwrap();
        let blocker = admission
            .acquire(Priority::LatencyCritical, TenantId(3), Instant::now(), None)
            .unwrap();
        let order: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            let admission = &admission;
            let order = &order;
            // Tenant 1 (already holding a slot) queues first...
            scope.spawn(move || {
                let permit = admission
                    .acquire(Priority::LatencyCritical, t1, Instant::now(), None)
                    .unwrap();
                order.lock().unwrap_or_else(|p| p.into_inner()).push("t1");
                drop(permit);
            });
            while admission.queue_depth() < 1 {
                std::thread::sleep(Duration::from_micros(50));
            }
            // ...then tenant 2, holding nothing, with a younger ticket.
            scope.spawn(move || {
                let permit = admission
                    .acquire(Priority::LatencyCritical, t2, Instant::now(), None)
                    .unwrap();
                order.lock().unwrap_or_else(|p| p.into_inner()).push("t2");
                drop(permit);
            });
            while admission.queue_depth() < 2 {
                std::thread::sleep(Duration::from_micros(50));
            }
            drop(blocker);
        });
        assert_eq!(
            *order.lock().unwrap_or_else(|p| p.into_inner()),
            ["t2", "t1"],
            "the tenant holding fewer slots must be granted first"
        );
        drop(t1_held);
    }

    #[test]
    fn env_parsing_warns_once_and_falls_back() {
        assert_eq!(parse_env::<usize>(None), EnvParse::Unset);
        assert_eq!(parse_env::<usize>(Some(" 7 ")), EnvParse::Value(7));
        assert_eq!(
            parse_env::<usize>(Some("seven")),
            EnvParse::<usize>::Invalid
        );
        // Warn-once is keyed by variable name, not by value.
        assert!(warn_once_unparsable("HEXCUTE_SERVICE_TEST_ONLY_A", "seven"));
        assert!(!warn_once_unparsable(
            "HEXCUTE_SERVICE_TEST_ONLY_A",
            "eight"
        ));
        assert!(warn_once_unparsable("HEXCUTE_SERVICE_TEST_ONLY_B", "nine"));
    }

    #[test]
    fn background_class_requests_serve_and_are_counted() {
        let service = CompileService::new(GpuArch::a100());
        let program = small_program("background_class");
        let tenant = TenantId(7);
        let first = service
            .compile_as(&program, Priority::Background, tenant)
            .unwrap();
        assert_eq!(first.served_from, ServedFrom::Synthesized);
        let second = service
            .compile_as(&program, Priority::Background, tenant)
            .unwrap();
        assert_eq!(second.served_from, ServedFrom::Memory);
        assert_eq!(*first.artifact, *second.artifact);
        let stats = service.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.background_requests, 2, "{stats}");
    }

    #[test]
    fn speculative_prefetch_warms_predicted_fingerprints() {
        let dir = unique_temp_dir("prefetch");
        let cache_config = KernelCacheConfig {
            dir: Some(dir.clone()),
            ttl: Some(Duration::from_millis(80)),
            ..KernelCacheConfig::default()
        };
        let service = CompileService::with_service_config(
            GpuArch::a100(),
            CompilerOptions::new(),
            cache_config,
            ServiceConfig {
                prefetch: true,
                ..ServiceConfig::default()
            },
        );
        let a = small_program("prefetch_a");
        let b = small_program("prefetch_b");
        // Teach the transition model the A → B pattern.
        for _ in 0..3 {
            service.compile(&a).unwrap();
            service.compile(&b).unwrap();
        }
        // Let both tiers expire so B is genuinely cold again.
        std::thread::sleep(Duration::from_millis(120));
        // Serving A predicts B; a background job re-warms it speculatively.
        service.compile(&a).unwrap();
        assert!(
            hexcute_parallel::wait_background_idle(Duration::from_secs(10)),
            "prefetch jobs must drain"
        );
        let warm = service.compile(&b).unwrap();
        assert_eq!(
            warm.served_from,
            ServedFrom::Memory,
            "the predicted fingerprint must already be warm"
        );
        let stats = service.stats();
        assert!(stats.prefetch_issued >= 1, "{stats}");
        assert!(stats.prefetch_warmed >= 1, "{stats}");
        assert!(
            stats.prefetch_hits >= 1,
            "the demand hit must be attributed to the prefetch: {stats}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
