//! Table II: programmability (lines of code) and performance of Hexcute vs
//! the CUDA libraries and Triton across six operator families.

use hexcute_arch::{DType, GpuArch};
use hexcute_baselines::{library_latency_us, triton_latency_us, Library, Workload};
use hexcute_ir::Program;
use hexcute_kernels::attention::{mha_decoding, mha_forward, AttentionConfig, AttentionShape};
use hexcute_kernels::gemm::{
    fp16_gemm, fp8_blockwise_gemm, warp_specialized_gemm, GemmConfig, GemmShape,
};

use crate::{compile_hexcute, geomean, Report};

/// One operator family of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperatorFamily {
    /// FP16 GEMM on the A100 (baseline: cuBLAS).
    Fp16GemmA100,
    /// Fused multi-head attention forward on the A100 (baseline: FlashAttention-2).
    MhaForwardA100,
    /// Fused multi-head attention decoding on the A100 (baseline: FlashInfer).
    MhaDecodingA100,
    /// Blockwise-scaled FP8 GEMM on the H100 (baseline: CUTLASS).
    Fp8GemmH100,
    /// Warp-specialized FP16 GEMM on the H100 (baseline: cuBLAS).
    WarpSpecializedGemmH100,
    /// Fused multi-head attention forward on the H100 (baseline: FlashAttention-3).
    MhaForwardH100,
}

impl OperatorFamily {
    /// All six families, in Table II order.
    pub const ALL: [OperatorFamily; 6] = [
        OperatorFamily::Fp16GemmA100,
        OperatorFamily::MhaForwardA100,
        OperatorFamily::MhaDecodingA100,
        OperatorFamily::Fp8GemmH100,
        OperatorFamily::WarpSpecializedGemmH100,
        OperatorFamily::MhaForwardH100,
    ];

    /// Display name matching the paper's row labels.
    pub fn name(&self) -> &'static str {
        match self {
            OperatorFamily::Fp16GemmA100 => "FP16 GEMM (A100)",
            OperatorFamily::MhaForwardA100 => "Fused MHA Forward (A100)",
            OperatorFamily::MhaDecodingA100 => "Fused MHA Decoding (A100)",
            OperatorFamily::Fp8GemmH100 => "Blockwise Scaled FP8 GEMM (H100)",
            OperatorFamily::WarpSpecializedGemmH100 => "Warp Specialized FP16 GEMM (H100)",
            OperatorFamily::MhaForwardH100 => "Fused MHA Forward (H100)",
        }
    }

    /// The target architecture.
    pub fn arch(&self) -> GpuArch {
        match self {
            OperatorFamily::Fp16GemmA100
            | OperatorFamily::MhaForwardA100
            | OperatorFamily::MhaDecodingA100 => GpuArch::a100(),
            _ => GpuArch::h100(),
        }
    }

    /// The expert-tuned CUDA baseline the family is normalized against.
    pub fn baseline_library(&self) -> Library {
        match self {
            OperatorFamily::Fp16GemmA100 | OperatorFamily::WarpSpecializedGemmH100 => {
                Library::CuBlas
            }
            OperatorFamily::MhaForwardA100 => Library::FlashAttention2,
            OperatorFamily::MhaDecodingA100 => Library::FlashInfer,
            OperatorFamily::Fp8GemmH100 => Library::CutlassFp8,
            OperatorFamily::MhaForwardH100 => Library::FlashAttention3,
        }
    }

    /// Lines of code reported by the paper for (CUDA, Triton, Hexcute).
    pub fn lines_of_code(&self) -> (usize, usize, usize) {
        match self {
            OperatorFamily::Fp16GemmA100 => (703, 71, 98),
            OperatorFamily::MhaForwardA100 => (577, 114, 172),
            OperatorFamily::MhaDecodingA100 => (322, 224, 253),
            OperatorFamily::Fp8GemmH100 => (900, 87, 180),
            OperatorFamily::WarpSpecializedGemmH100 => (1024, 71, 169),
            OperatorFamily::MhaForwardH100 => (1684, 114, 212),
        }
    }

    /// The shapes evaluated for this family (a subset of the paper's sweep
    /// when `quick` is set).
    pub fn shapes(&self, quick: bool) -> Vec<FamilyShape> {
        let gemm: Vec<FamilyShape> = [
            (2048, 2048, 2048),
            (4096, 4096, 4096),
            (8192, 4096, 4096),
            (4096, 8192, 8192),
            (8192, 8192, 8192),
            (4096, 4096, 16384),
        ]
        .iter()
        .map(|&(m, n, k)| FamilyShape::Gemm(GemmShape::new(m, n, k)))
        .collect();
        let forward: Vec<FamilyShape> = [
            (1, 32, 1024, 128),
            (1, 32, 2048, 128),
            (4, 32, 4096, 128),
            (8, 16, 8192, 64),
        ]
        .iter()
        .map(|&(b, h, s, d)| FamilyShape::Attention(AttentionShape::forward(b, h, s, d)))
        .collect();
        let decode: Vec<FamilyShape> = [
            (16, 32, 2048, 128),
            (32, 32, 4096, 128),
            (64, 32, 8192, 128),
            (128, 16, 16384, 64),
        ]
        .iter()
        .map(|&(b, h, s, d)| FamilyShape::Attention(AttentionShape::decoding(b, h, s, d)))
        .collect();
        let mut shapes = match self {
            OperatorFamily::Fp16GemmA100
            | OperatorFamily::WarpSpecializedGemmH100
            | OperatorFamily::Fp8GemmH100 => gemm,
            OperatorFamily::MhaForwardA100 | OperatorFamily::MhaForwardH100 => forward,
            OperatorFamily::MhaDecodingA100 => decode,
        };
        if quick {
            shapes.truncate(3);
        }
        shapes
    }

    /// Builds the Hexcute program for one shape of this family.
    pub fn program(&self, shape: &FamilyShape) -> Program {
        match (self, shape) {
            (OperatorFamily::Fp16GemmA100, FamilyShape::Gemm(s)) => {
                fp16_gemm(*s, GemmConfig::default()).expect("fp16 gemm")
            }
            (OperatorFamily::WarpSpecializedGemmH100, FamilyShape::Gemm(s)) => {
                warp_specialized_gemm(*s, GemmConfig::warp_specialized_hopper()).expect("ws gemm")
            }
            (OperatorFamily::Fp8GemmH100, FamilyShape::Gemm(s)) => {
                fp8_blockwise_gemm(*s, GemmConfig::default()).expect("fp8 gemm")
            }
            (
                OperatorFamily::MhaForwardA100 | OperatorFamily::MhaForwardH100,
                FamilyShape::Attention(s),
            ) => mha_forward(*s, AttentionConfig::default()).expect("mha forward"),
            (OperatorFamily::MhaDecodingA100, FamilyShape::Attention(s)) => {
                mha_decoding(*s, AttentionConfig::default()).expect("mha decoding")
            }
            _ => unreachable!("shape kind does not match the operator family"),
        }
    }

    /// The roofline workload of one shape (for the library baseline).
    pub fn workload(&self, shape: &FamilyShape) -> Workload {
        match shape {
            FamilyShape::Gemm(s) => {
                let bits = if matches!(self, OperatorFamily::Fp8GemmH100) {
                    8
                } else {
                    16
                };
                let dtype = if bits == 8 { DType::F8E4M3 } else { DType::F16 };
                Workload::new(s.flops(), s.bytes(bits, bits, 16), dtype)
            }
            FamilyShape::Attention(s) => Workload::new(s.flops(), s.bytes(), DType::F16),
        }
    }
}

/// A problem shape of one of the Table II families.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FamilyShape {
    /// A GEMM problem.
    Gemm(GemmShape),
    /// An attention problem.
    Attention(AttentionShape),
}

impl FamilyShape {
    /// A short label for figure rows.
    pub fn label(&self) -> String {
        match self {
            FamilyShape::Gemm(s) => format!("{}x{}x{}", s.m, s.n, s.k),
            FamilyShape::Attention(s) => {
                format!(
                    "b{} h{} q{} kv{} d{}",
                    s.batch, s.heads, s.q_len, s.kv_len, s.head_dim
                )
            }
        }
    }
}

/// The three backends' latencies for one shape of one family, in µs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeResult {
    /// Expert-tuned CUDA library baseline.
    pub library_us: f64,
    /// Triton-style compilation.
    pub triton_us: f64,
    /// Hexcute.
    pub hexcute_us: f64,
}

/// Evaluates one family over its shapes.
pub fn evaluate_family(family: OperatorFamily, quick: bool) -> Vec<(FamilyShape, ShapeResult)> {
    let arch = family.arch();
    family
        .shapes(quick)
        .into_iter()
        .map(|shape| {
            let program = family.program(&shape);
            let hexcute = compile_hexcute(&program, &arch).latency_us();
            let triton = triton_latency_us(&program, &arch)
                .map(|r| r.latency_us)
                .unwrap_or(f64::INFINITY);
            let library =
                library_latency_us(family.baseline_library(), &family.workload(&shape), &arch);
            (
                shape,
                ShapeResult {
                    library_us: library,
                    triton_us: triton,
                    hexcute_us: hexcute,
                },
            )
        })
        .collect()
}

/// Regenerates Table II.
pub fn table2(quick: bool) -> Report {
    let mut report = Report::new(
        "Table II: programmability and performance (normalized against the CUDA baseline)",
        &[
            "Operator",
            "LoC CUDA",
            "LoC Triton",
            "LoC Hexcute",
            "Triton perf",
            "Hexcute perf",
            "Baseline",
        ],
    );
    for family in OperatorFamily::ALL {
        let results = evaluate_family(family, quick);
        let triton_norm: Vec<f64> = results
            .iter()
            .map(|(_, r)| r.library_us / r.triton_us)
            .collect();
        let hexcute_norm: Vec<f64> = results
            .iter()
            .map(|(_, r)| r.library_us / r.hexcute_us)
            .collect();
        let (loc_cuda, loc_triton, loc_hexcute) = family.lines_of_code();
        report.push_row(vec![
            family.name().to_string(),
            loc_cuda.to_string(),
            loc_triton.to_string(),
            loc_hexcute.to_string(),
            format!("{:.2}x", geomean(&triton_norm)),
            format!("{:.2}x", geomean(&hexcute_norm)),
            family.baseline_library().name().to_string(),
        ]);
    }
    report.push_note(
        "Lines of code are the paper's reported values (CUTLASS/Triton/Hexcute sources).",
    );
    report.push_note(
        "Paper-reported normalized performance — Triton: 0.75/0.93/0.50/0.50/0.64/0.56, Hexcute: 1.00/1.05/1.02/1.17/1.25/1.27.",
    );
    report.push_note("Latencies come from the performance simulator; see EXPERIMENTS.md for the modelling caveats.");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_metadata_is_complete() {
        for family in OperatorFamily::ALL {
            assert!(!family.name().is_empty());
            let (cuda, triton, hexcute) = family.lines_of_code();
            assert!(
                cuda > hexcute,
                "{}: Hexcute should be shorter than CUDA",
                family.name()
            );
            assert!(
                triton <= hexcute,
                "{}: Triton should be shortest",
                family.name()
            );
            assert!(!family.shapes(true).is_empty());
        }
    }

    #[test]
    fn fp16_gemm_family_matches_libraries_and_beats_triton() {
        let results = evaluate_family(OperatorFamily::Fp16GemmA100, true);
        for (shape, r) in &results {
            assert!(
                r.hexcute_us <= r.triton_us,
                "{}: Hexcute {} should not be slower than Triton {}",
                shape.label(),
                r.hexcute_us,
                r.triton_us
            );
            let vs_library = r.library_us / r.hexcute_us;
            assert!(
                (0.5..2.5).contains(&vs_library),
                "{}: Hexcute should be within 2.5x of cuBLAS, got {vs_library:.2}",
                shape.label()
            );
        }
    }

    #[test]
    fn table2_has_one_row_per_family() {
        let report = table2(true);
        assert_eq!(report.rows.len(), 6);
        assert!(report.to_string().contains("FP16 GEMM"));
    }
}
