//! Table III and Table IV: bytes per instruction selected by Hexcute vs the
//! baselines for the mixed-type MoE kernel and the Mamba selective scan.

use hexcute_arch::GpuArch;
use hexcute_baselines::{triton_latency_us, triton_moe_program};
use hexcute_ir::OpKind;
use hexcute_kernels::mamba::{selective_scan, ScanConfig, ScanShape};
use hexcute_kernels::moe::{mixed_type_moe, MoeConfig, MoeDataflow, MoeShape};

use crate::{compile_hexcute, Report};

/// Per-tensor instruction widths of the Hexcute candidate for a program.
fn hexcute_copy_widths(
    program_name: &str,
    arch: &GpuArch,
    program: hexcute_ir::Program,
) -> Vec<(String, String, usize)> {
    let kernel = compile_hexcute(&program, arch);
    let mut rows = Vec::new();
    for op in kernel.program.ops() {
        if let OpKind::Copy { src, dst } = op.kind {
            if let Some(choice) = kernel.candidate.copy_choices.get(&op.id) {
                let s = kernel.program.tensor(src);
                let d = kernel.program.tensor(dst);
                let direction = format!("{}→{}", s.space, d.space);
                let bytes = s.dtype.bytes_for(choice.elements_per_thread);
                rows.push((
                    format!("{} ({})", s.name, direction),
                    choice.atom.name.clone(),
                    bytes,
                ));
            }
        }
    }
    let _ = program_name;
    rows
}

/// Regenerates Table III (MoE kernel instruction widths, Hexcute vs Triton).
pub fn table3() -> Report {
    let arch = GpuArch::h100();
    let shape = MoeShape::deepseek_r1(64);
    let config = MoeConfig::default();
    let mut report = Report::new(
        "Table III: bytes per thread per instruction for the mixed-type MoE kernel",
        &[
            "tensor (direction)",
            "Hexcute instruction",
            "Hexcute B/thread",
        ],
    );
    let hexcute_rows = hexcute_copy_widths(
        "moe",
        &arch,
        mixed_type_moe(shape, config, MoeDataflow::Efficient).expect("hexcute MoE"),
    );
    for (tensor, instr, bytes) in &hexcute_rows {
        report.push_row(vec![tensor.clone(), instr.clone(), bytes.to_string()]);
    }
    let triton = triton_latency_us(
        &triton_moe_program(shape, config).expect("triton MoE"),
        &arch,
    )
    .expect("triton compilation");
    let triton_max = triton.copy_bytes.iter().map(|(_, b)| *b).max().unwrap_or(0);
    let hexcute_max = hexcute_rows.iter().map(|(_, _, b)| *b).max().unwrap_or(0);
    report.push_note(format!(
        "Triton-style compilation peaks at {triton_max} B/thread (scalar fallback for the quantized weight path); Hexcute peaks at {hexcute_max} B/thread."
    ));
    report.push_note("Paper (Table III): Hexcute uses 16 B G2S / 8 B S2R for every tensor; Triton falls to 1-8 B.");
    report
}

/// Regenerates Table IV (Mamba scan instruction widths, Hexcute vs the Mamba
/// library).
pub fn table4() -> Report {
    let arch = GpuArch::h100();
    let shape = ScanShape::new(1, 4096, 16, 4096);
    let mut report = Report::new(
        "Table IV: bytes per thread per instruction for the Mamba selective scan",
        &[
            "tensor (direction)",
            "Hexcute instruction",
            "Hexcute B/thread",
            "Mamba library B/thread",
        ],
    );
    // The Mamba library relies on cub::BlockLoad, which degrades to scalar
    // (2-4 byte) loads for these tensors (paper, Table IV).
    let library_width = |tensor: &str| if tensor.starts_with("a ") { 4 } else { 2 };
    let rows = hexcute_copy_widths(
        "scan",
        &arch,
        selective_scan(shape, ScanConfig::default()).expect("scan"),
    );
    for (tensor, instr, bytes) in &rows {
        report.push_row(vec![
            tensor.clone(),
            instr.clone(),
            bytes.to_string(),
            library_width(tensor).to_string(),
        ]);
    }
    report.push_note("Paper (Table IV): Hexcute selects 8-16 B instructions; the Mamba library uses 2-4 B loads.");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shows_hexcute_at_least_as_wide_as_triton() {
        let report = table3();
        assert!(!report.rows.is_empty());
        // The weight tensor is staged with 16-byte copies.
        let w_row = report
            .rows
            .iter()
            .find(|r| r[0].starts_with("w "))
            .expect("weight row");
        assert_eq!(w_row[2], "16");
    }

    #[test]
    fn table4_scan_loads_are_wider_than_the_library() {
        let report = table4();
        assert!(report.rows.len() >= 6);
        for row in &report.rows {
            let hexcute: usize = row[2].parse().unwrap();
            let library: usize = row[3].parse().unwrap();
            assert!(hexcute >= library, "{}: {hexcute} < {library}", row[0]);
        }
    }
}
