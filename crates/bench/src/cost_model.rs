//! Fig. 12: accuracy of the analytical cost model — for every GEMM shape,
//! how close the cost-model-selected candidate is to the true (simulated)
//! optimum, and Section VII-C compile-time statistics.

use hexcute_arch::GpuArch;
use hexcute_core::Compiler;
use hexcute_kernels::gemm::{fp16_gemm, GemmConfig, GemmShape};

use crate::{geomean, Report};

/// The accuracy data point for one GEMM shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyPoint {
    /// The GEMM shape.
    pub shape: GemmShape,
    /// Number of candidates the search explored.
    pub candidates: usize,
    /// Simulated latency of the cost-model-selected candidate (µs).
    pub selected_us: f64,
    /// Simulated latency of the best candidate (µs).
    pub best_us: f64,
    /// `selected / best` (1.0 = the cost model found the optimum).
    pub ratio: f64,
}

/// The 16 GEMM shapes of the accuracy study (fewer when `quick`).
pub fn accuracy_shapes(quick: bool) -> Vec<GemmShape> {
    let mut shapes = Vec::new();
    for &m in &[1024usize, 2048, 4096, 8192] {
        for &k in &[1024usize, 2048, 4096, 8192] {
            shapes.push(GemmShape::new(m, 4096, k));
        }
    }
    if quick {
        shapes.truncate(4);
    }
    shapes
}

/// Evaluates cost-model accuracy across GEMM shapes on the A100.
pub fn evaluate_accuracy(shapes: &[GemmShape]) -> Vec<AccuracyPoint> {
    let arch = GpuArch::a100();
    shapes
        .iter()
        .map(|&shape| {
            let program = fp16_gemm(shape, GemmConfig::default()).expect("gemm program");
            let compiler = Compiler::new(arch.clone());
            let ranked = compiler.compile_candidates(&program).expect("candidates");
            let candidates = ranked.len();
            let selected = ranked
                .iter()
                .min_by(|a, b| a.1.total_cycles.total_cmp(&b.1.total_cycles))
                .expect("at least one candidate");
            let best = ranked
                .iter()
                .min_by(|a, b| a.2.latency_us.total_cmp(&b.2.latency_us))
                .expect("at least one candidate");
            let selected_us = selected.2.latency_us;
            let best_us = best.2.latency_us;
            AccuracyPoint {
                shape,
                candidates,
                selected_us,
                best_us,
                ratio: selected_us / best_us,
            }
        })
        .collect()
}

/// Regenerates Fig. 12.
pub fn fig12(quick: bool) -> Report {
    let points = evaluate_accuracy(&accuracy_shapes(quick));
    let mut report = Report::new(
        "Fig. 12: analytical cost model accuracy (selected vs true-optimal candidate)",
        &[
            "shape (MxNxK)",
            "candidates",
            "selected (us)",
            "best (us)",
            "ratio",
        ],
    );
    for p in &points {
        report.push_row(vec![
            format!("{}x{}x{}", p.shape.m, p.shape.n, p.shape.k),
            p.candidates.to_string(),
            format!("{:.2}", p.selected_us),
            format!("{:.2}", p.best_us),
            format!("{:.3}", p.ratio),
        ]);
    }
    let worst = points.iter().map(|p| p.ratio).fold(0.0f64, f64::max);
    let mean = geomean(&points.iter().map(|p| p.ratio).collect::<Vec<_>>());
    report.push_note(format!(
        "Measured: geomean ratio {mean:.3}, worst {worst:.3}."
    ));
    report.push_note("Paper: the cost model selects candidates within 1.01x of the true optimum.");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_selection_is_near_optimal() {
        let points = evaluate_accuracy(&accuracy_shapes(true));
        for p in &points {
            assert!(p.candidates > 1, "search should explore several candidates");
            assert!(p.ratio >= 1.0);
            assert!(
                p.ratio < 1.15,
                "shape {:?}: ratio {:.3} too far from optimal",
                p.shape,
                p.ratio
            );
        }
    }

    #[test]
    fn sixteen_shapes_by_default() {
        assert_eq!(accuracy_shapes(false).len(), 16);
        assert_eq!(accuracy_shapes(true).len(), 4);
    }
}
