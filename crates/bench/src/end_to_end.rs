//! Fig. 13: end-to-end vLLM decode latency on DeepSeek-R1-AWQ,
//! Jamba-mini-1.7 and Qwen-3-32B with and without Hexcute kernels.

use hexcute_arch::GpuArch;
use hexcute_e2e::{decode_latency_ms, KernelBackend, ModelConfig};

use crate::Report;

/// The end-to-end result for one model and batch size.
#[derive(Debug, Clone, PartialEq)]
pub struct E2ePoint {
    /// Model name.
    pub model: String,
    /// Batch size.
    pub batch: usize,
    /// Baseline (Triton/CUTLASS-backed vLLM) latency for 100 output tokens, in ms.
    pub baseline_ms: f64,
    /// Hexcute-backed vLLM latency for 100 output tokens, in ms.
    pub hexcute_ms: f64,
    /// Speedup.
    pub speedup: f64,
}

/// Evaluates the three models of Fig. 13 for the given batch sizes.
pub fn evaluate_end_to_end(batches: &[usize]) -> Vec<E2ePoint> {
    let arch = GpuArch::h100();
    let output_tokens = 100.0;
    let mut points = Vec::new();
    for model in [
        ModelConfig::deepseek_r1_awq(),
        ModelConfig::jamba_mini(),
        ModelConfig::qwen3_32b(),
    ] {
        for &batch in batches {
            let seq = 2048;
            let baseline = decode_latency_ms(&model, KernelBackend::Baseline, batch, seq, &arch);
            let hexcute = decode_latency_ms(&model, KernelBackend::Hexcute, batch, seq, &arch);
            let baseline_ms = baseline.total_ms * output_tokens;
            let hexcute_ms = hexcute.total_ms * output_tokens;
            points.push(E2ePoint {
                model: model.name.clone(),
                batch,
                baseline_ms,
                hexcute_ms,
                speedup: baseline_ms / hexcute_ms,
            });
        }
    }
    points
}

/// Regenerates Fig. 13.
pub fn fig13(quick: bool) -> Report {
    let batches = if quick { vec![8] } else { vec![1, 8, 32, 64] };
    let points = evaluate_end_to_end(&batches);
    let mut report = Report::new(
        "Fig. 13: end-to-end latency for 100 output tokens (vLLM on H100)",
        &[
            "model",
            "batch",
            "vLLM baseline (ms)",
            "vLLM + Hexcute (ms)",
            "speedup",
        ],
    );
    for p in &points {
        report.push_row(vec![
            p.model.clone(),
            p.batch.to_string(),
            format!("{:.1}", p.baseline_ms),
            format!("{:.1}", p.hexcute_ms),
            format!("{:.2}x", p.speedup),
        ]);
    }
    report.push_note("Paper: up to 2.60x on DeepSeek-R1-AWQ (avg 2.04x), up to 2.04x on the Mamba-based model (avg 1.30x), up to 1.13x on Qwen-3-32B.");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_ordering_matches_the_paper() {
        let points = evaluate_end_to_end(&[8]);
        let by_model = |name: &str| {
            points
                .iter()
                .find(|p| p.model.contains(name))
                .unwrap()
                .speedup
        };
        let deepseek = by_model("DeepSeek");
        let jamba = by_model("Jamba");
        let qwen = by_model("Qwen");
        assert!(deepseek > 1.2, "DeepSeek speedup {deepseek:.2}");
        assert!(jamba > 1.05, "Jamba speedup {jamba:.2}");
        assert!(qwen > 0.8 && qwen < deepseek, "Qwen speedup {qwen:.2}");
        // The MoE model benefits the most, the dense FP8 model the least.
        assert!(deepseek >= jamba || deepseek >= qwen);
    }
}
