//! Section VII-C: compilation time and candidate-count statistics.

use std::time::Instant;

use hexcute_arch::GpuArch;
use hexcute_core::Compiler;
use hexcute_kernels::gemm::{fp16_gemm, GemmConfig, GemmShape};

use crate::Report;

/// Compile-time statistics for one GEMM layer compiled across several tile
/// configurations (the paper compiles 102 kernel candidates in 48.39 s with
/// 20 CPU cores; this reproduction is single-threaded and simulator-backed,
/// so only the candidate accounting is comparable).
pub fn compile_time_stats(shape: GemmShape) -> (usize, usize, f64) {
    let arch = GpuArch::a100();
    let configs = [
        GemmConfig {
            block_m: 128,
            block_n: 128,
            block_k: 32,
            ..GemmConfig::default()
        },
        GemmConfig {
            block_m: 128,
            block_n: 64,
            block_k: 64,
            ..GemmConfig::default()
        },
        GemmConfig {
            block_m: 64,
            block_n: 128,
            block_k: 64,
            ..GemmConfig::default()
        },
        GemmConfig {
            block_m: 64,
            block_n: 64,
            block_k: 64,
            ..GemmConfig::default()
        },
        GemmConfig {
            block_m: 256,
            block_n: 128,
            block_k: 32,
            threads: 256,
            ..GemmConfig::default()
        },
        GemmConfig {
            block_m: 128,
            block_n: 256,
            block_k: 32,
            threads: 256,
            ..GemmConfig::default()
        },
    ];
    let start = Instant::now();
    let mut total_candidates = 0usize;
    let mut kernels = 0usize;
    for config in configs {
        if !shape.m.is_multiple_of(config.block_m)
            || !shape.n.is_multiple_of(config.block_n)
            || !shape.k.is_multiple_of(config.block_k)
        {
            continue;
        }
        let program = fp16_gemm(shape, config).expect("gemm program");
        let compiled = Compiler::new(arch.clone())
            .compile(&program)
            .expect("compilation");
        total_candidates += compiled.stats.candidates_explored;
        kernels += 1;
    }
    (kernels, total_candidates, start.elapsed().as_secs_f64())
}

/// Regenerates the Section VII-C compile-time comparison.
pub fn compile_time_report() -> Report {
    let shape = GemmShape::new(4096, 4096, 4096);
    let (kernels, candidates, seconds) = compile_time_stats(shape);
    let mut report = Report::new(
        "Section VII-C: compilation time",
        &[
            "kernel configurations",
            "candidate programs",
            "wall-clock (s)",
        ],
    );
    report.push_row(vec![
        kernels.to_string(),
        candidates.to_string(),
        format!("{seconds:.2}"),
    ]);
    report.push_note("Paper: 102 kernel candidates compiled in 48.39 s (Hexcute) vs 57.10 s (Triton) on 20 cores.");
    report.push_note("This reproduction lowers to a simulator instead of invoking nvcc, so wall-clock times are much smaller; the candidate accounting is the comparable quantity.");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_time_stats_explore_many_candidates() {
        let (kernels, candidates, seconds) = compile_time_stats(GemmShape::new(4096, 4096, 4096));
        assert!(kernels >= 4);
        assert!(
            candidates > 20,
            "expected a sizeable search, got {candidates}"
        );
        assert!(seconds < 120.0);
    }
}
