//! Before/after measurements of the branch-and-bound pruned synthesis
//! (PR 9): admissible completion bounds cutting dominated subtrees of the
//! candidate search, measured on the paper's five workload families with
//! deliberately enlarged choice spaces (the `max_candidates` cap relaxed
//! well past every family's full enumeration, so the exhaustive side really
//! scores the whole space).
//!
//! Each family runs twice per entry, both sides single-threaded so the
//! comparison isolates pruning rather than parallel fan-out, and both
//! mirroring the compiler's cost-model selection: the exhaustive side
//! synthesizes every candidate and estimates each one to find the argmin;
//! the pruned side runs [`Synthesizer::synthesize_pruned`] with the
//! [`CompletionBounds`] bounder, which only scores the leaves whose bound
//! survives the incumbent. Both sides finish with one perf evaluation of
//! the winner, as `compile` does.
//!
//! The invariants are verified, not just printed: the pruned winner, its
//! score bits and its enumeration index must equal the exhaustive argmin on
//! every family (pruning is lossless), no family may score *more*
//! candidates than exhaustive, and over the suite pruning must score at
//! least 2x fewer candidates (geomean) at a lower wall-clock per winner
//! (geomean). The bar is a geomean rather than per-family because pruning
//! power is workload-dependent by construction: on the attention family
//! most siblings fail shared-memory feasibility and degrade to the *same*
//! scalar fallback, and feasibility is only learnable by finishing the
//! leaf — an admissible bound must assume the optimistic non-degraded
//! completion, so those leaves cannot be cut. The results feed
//! `BENCH_pr9.json` via the `repro_prune` binary.

use hexcute_arch::GpuArch;
use hexcute_costmodel::{CompletionBounds, CostModel};
use hexcute_ir::Program;
use hexcute_kernels::attention::{mha_forward, AttentionConfig, AttentionShape};
use hexcute_kernels::gemm::{fp16_gemm, GemmConfig, GemmShape};
use hexcute_kernels::grouped_gemm::{grouped_gemm, GroupedGemmConfig, GroupedGemmShape};
use hexcute_kernels::moe::{mixed_type_moe, MoeConfig, MoeDataflow, MoeShape};
use hexcute_kernels::quant_gemm::{w4a16_gemm, QuantGemmConfig, QuantGemmShape};
use hexcute_sim::PerfEvaluator;
use hexcute_synthesis::{Candidate, SynthesisOptions, Synthesizer};

use crate::fastpath::measure_ns;
use crate::report::Report;
use crate::{checks, geomean};

/// One family's exhaustive-vs-pruned measurement plus the pruning counters
/// of one instrumented serial pruned search.
#[derive(Debug, Clone)]
pub struct PruneEntry {
    /// Workload family (`gemm`, `attention`, `moe`, `quant`, `grouped`).
    pub family: String,
    /// Leaves of the choice tree — candidates the exhaustive search scores.
    pub exhaustive_scored: usize,
    /// Candidates the pruned search actually scored (surviving leaves).
    pub pruned_scored: usize,
    /// Subtrees cut by a group-prefix bound before expansion.
    pub subtrees_cut: usize,
    /// Individual selections cut by a leaf bound inside surviving subtrees.
    pub selections_pruned: usize,
    /// Completion bounds evaluated (group prefixes + leaves).
    pub bound_evaluations: usize,
    /// Times a finished leaf improved the shared incumbent.
    pub incumbent_updates: usize,
    /// Median nanoseconds to produce the winning kernel exhaustively.
    pub exhaustive_ns_per_winner: f64,
    /// Median nanoseconds to produce the same winner with pruning.
    pub pruned_ns_per_winner: f64,
}

impl PruneEntry {
    /// Exhaustively scored candidates over pruned scored candidates.
    pub fn scored_ratio(&self) -> f64 {
        if self.pruned_scored > 0 {
            self.exhaustive_scored as f64 / self.pruned_scored as f64
        } else {
            0.0
        }
    }

    /// Exhaustive wall-clock per winner over pruned wall-clock per winner.
    pub fn speedup(&self) -> f64 {
        if self.pruned_ns_per_winner > 0.0 {
            self.exhaustive_ns_per_winner / self.pruned_ns_per_winner
        } else {
            0.0
        }
    }
}

/// The workload suite: the paper's five families at the shapes the
/// compile-time evaluation uses.
fn suite() -> Vec<(&'static str, Program)> {
    let quant_shape = QuantGemmShape::llama_70b_proj(64);
    vec![
        (
            "gemm",
            fp16_gemm(GemmShape::new(4096, 4096, 4096), GemmConfig::default())
                .expect("GEMM construction"),
        ),
        (
            "attention",
            mha_forward(
                AttentionShape::forward(8, 32, 2048, 128),
                AttentionConfig::default(),
            )
            .expect("attention construction"),
        ),
        (
            "moe",
            mixed_type_moe(
                MoeShape::deepseek_r1(128),
                MoeConfig::default(),
                MoeDataflow::Efficient,
            )
            .expect("MoE construction"),
        ),
        (
            "quant",
            w4a16_gemm(quant_shape, QuantGemmConfig::for_shape(&quant_shape))
                .expect("W4A16 GEMM construction"),
        ),
        (
            "grouped",
            grouped_gemm(&GroupedGemmShape::mixtral(64), GroupedGemmConfig::default())
                .expect("grouped GEMM construction"),
        ),
    ]
}

/// The enlarged-choice-space option set: the candidate cap relaxed far past
/// every family's full enumeration (so the exhaustive side scores the whole
/// space and the pruned search never declines on the cap), and the walk
/// forced serial so both sides spend the same single thread and the
/// counters are deterministic.
fn enlarged() -> SynthesisOptions {
    SynthesisOptions {
        max_candidates: 4096,
        node_budget: None,
        beam_width: None,
        parallel_workers: Some(1),
        parallel_subtree_depth: Some(0),
        ..SynthesisOptions::default()
    }
}

/// One exhaustive cold pass, the compiler's pre-PR-9 selection loop: fresh
/// model, every candidate estimated, first minimal kept, winner
/// perf-evaluated once. Returns (scored, winner, score).
fn exhaustive_pass(program: &Program, arch: &GpuArch) -> (usize, Candidate, f64) {
    let candidates = Synthesizer::new(program, arch, enlarged())
        .synthesize()
        .expect("suite programs synthesize");
    let model = CostModel::new(arch);
    let scored = candidates.len();
    let winner = candidates
        .into_iter()
        .min_by(|a, b| {
            model
                .estimate(program, a)
                .total_cycles
                .total_cmp(&model.estimate(program, b).total_cycles)
        })
        .expect("at least one candidate");
    let cost = model.estimate(program, &winner);
    let score = cost.total_cycles;
    std::hint::black_box(PerfEvaluator::new(arch).evaluate(program, &winner, &cost));
    (scored, winner, score)
}

/// One pruned cold pass: fresh model and bounder, branch-and-bound walk,
/// winner perf-evaluated once, exactly as `Compiler::compile` does when
/// pruning engages. Returns the outcome.
fn pruned_pass(program: &Program, arch: &GpuArch) -> hexcute_synthesis::PrunedOutcome {
    let model = CostModel::new(arch);
    let mut bounder = CompletionBounds::new(&model, program);
    let outcome = Synthesizer::new(program, arch, enlarged())
        .synthesize_pruned(&mut bounder, None)
        .expect("suite programs synthesize")
        .expect("the relaxed cap keeps pruning engaged");
    let cost = model.estimate(program, &outcome.winner);
    std::hint::black_box(PerfEvaluator::new(arch).evaluate(program, &outcome.winner, &cost));
    outcome
}

/// Measures one family: an instrumented pruned pass for the counters and
/// the losslessness check, then timed exhaustive and pruned passes.
fn measure_family(family: &str, program: &Program, arch: &GpuArch) -> PruneEntry {
    let outcome = pruned_pass(program, arch);
    let (scored, winner, score) = exhaustive_pass(program, arch);

    checks::check(
        outcome.winner == winner,
        &format!("family {family}: the pruned winner diverged from the exhaustive argmin"),
    );
    checks::check(
        outcome.score.to_bits() == score.to_bits(),
        &format!(
            "family {family}: the pruned score {} is not bit-identical to the exhaustive {score}",
            outcome.score
        ),
    );
    checks::check(
        !outcome.truncated && !outcome.beamed,
        &format!("family {family}: an unbudgeted beam-free search truncated or beamed"),
    );

    let exhaustive_ns = measure_ns(
        || {
            std::hint::black_box(exhaustive_pass(program, arch));
        },
        5,
        40.0,
    );
    let pruned_ns = measure_ns(
        || {
            std::hint::black_box(pruned_pass(program, arch));
        },
        5,
        40.0,
    );

    PruneEntry {
        family: family.to_string(),
        exhaustive_scored: scored,
        pruned_scored: outcome.stats.candidates_scored,
        subtrees_cut: outcome.stats.subtrees_cut,
        selections_pruned: outcome.stats.selections_pruned,
        bound_evaluations: outcome.stats.bound_evaluations,
        incumbent_updates: outcome.stats.incumbent_updates,
        exhaustive_ns_per_winner: exhaustive_ns,
        pruned_ns_per_winner: pruned_ns,
    }
}

/// Runs the whole suite and verifies the PR 9 acceptance bar: per family,
/// pruning never scores more candidates than exhaustive; over the suite, at
/// least a 2x geomean reduction in scored candidates and a geomean
/// wall-clock per winner below exhaustive.
pub fn run_suite() -> Vec<PruneEntry> {
    let arch = GpuArch::a100();
    let entries: Vec<PruneEntry> = suite()
        .iter()
        .map(|(family, program)| measure_family(family, program, &arch))
        .collect();
    for e in &entries {
        checks::check(
            e.pruned_scored <= e.exhaustive_scored,
            &format!(
                "family {}: pruning scored {} candidates, more than the exhaustive {}",
                e.family, e.pruned_scored, e.exhaustive_scored
            ),
        );
    }
    checks::check(
        geomean_scored_ratio(&entries) >= 2.0,
        &format!(
            "geomean scored-candidate reduction {:.2}x is below the required 2x",
            geomean_scored_ratio(&entries)
        ),
    );
    checks::check(
        geomean_speedup(&entries) > 1.0,
        &format!(
            "geomean pruned wall-clock per winner is not below exhaustive ({:.2}x)",
            geomean_speedup(&entries)
        ),
    );
    entries
}

/// Geometric-mean scored-candidate reduction over the suite.
pub fn geomean_scored_ratio(entries: &[PruneEntry]) -> f64 {
    let ratios: Vec<f64> = entries.iter().map(PruneEntry::scored_ratio).collect();
    geomean(&ratios)
}

/// Geometric-mean wall-clock-per-winner speedup over the suite.
pub fn geomean_speedup(entries: &[PruneEntry]) -> f64 {
    let speedups: Vec<f64> = entries.iter().map(PruneEntry::speedup).collect();
    geomean(&speedups)
}

/// Formats the entries as a human-readable report.
pub fn as_report(entries: &[PruneEntry]) -> Report {
    let mut report = Report::new(
        "Branch-and-bound pruned synthesis: candidates scored per winner",
        &[
            "family",
            "exhaustive",
            "pruned",
            "ratio",
            "subtrees cut",
            "exhaustive /winner",
            "pruned /winner",
            "speedup",
        ],
    );
    for e in entries {
        report.push_row(vec![
            e.family.clone(),
            e.exhaustive_scored.to_string(),
            e.pruned_scored.to_string(),
            format!("{:.1}x", e.scored_ratio()),
            e.subtrees_cut.to_string(),
            format!("{:.2} µs", e.exhaustive_ns_per_winner / 1e3),
            format!("{:.2} µs", e.pruned_ns_per_winner / 1e3),
            format!("{:.2}x", e.speedup()),
        ]);
    }
    report.push_note(format!(
        "geomean scored-candidate reduction {:.2}x, geomean wall-clock speedup {:.2}x \
         (serial walk both sides; winners verified bit-identical)",
        geomean_scored_ratio(entries),
        geomean_speedup(entries)
    ));
    report
}

/// Serializes the suite as the `BENCH_pr9.json` document: per-family scored
/// counts, pruning counters, wall-clock per winner, and the suite geomeans.
pub fn to_json(entries: &[PruneEntry]) -> String {
    let mut out = format!(
        "{{\n  \"benchmark\": \"branch-and-bound pruned synthesis\",\n  \"meta\": {{\n    \
         \"threads\": {},\n    \"host_parallelism\": {},\n    \"os\": \"{}\",\n    \
         \"arch\": \"{}\",\n    \"max_candidates\": {}\n  }},\n  \"families\": {{\n",
        hexcute_parallel::worker_count(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        std::env::consts::OS,
        std::env::consts::ARCH,
        enlarged().max_candidates,
    );
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\n      \"candidates_scored_exhaustive\": {},\n      \
             \"candidates_scored_pruned\": {},\n      \"scored_ratio\": {:.3},\n      \
             \"subtrees_cut\": {},\n      \"selections_pruned\": {},\n      \
             \"bound_evaluations\": {},\n      \"incumbent_updates\": {},\n      \
             \"exhaustive_ns_per_winner\": {:.1},\n      \
             \"pruned_ns_per_winner\": {:.1},\n      \"speedup\": {:.3}\n    }}{}\n",
            e.family,
            e.exhaustive_scored,
            e.pruned_scored,
            e.scored_ratio(),
            e.subtrees_cut,
            e.selections_pruned,
            e.bound_evaluations,
            e.incumbent_updates,
            e.exhaustive_ns_per_winner,
            e.pruned_ns_per_winner,
            e.speedup(),
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    out.push_str(&format!(
        "  }},\n  \"geomean_scored_ratio\": {:.3},\n  \"geomean_speedup\": {:.3}\n}}\n",
        geomean_scored_ratio(entries),
        geomean_speedup(entries),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(family: &str, exhaustive: usize, pruned: usize, ex_ns: f64, pr_ns: f64) -> PruneEntry {
        PruneEntry {
            family: family.to_string(),
            exhaustive_scored: exhaustive,
            pruned_scored: pruned,
            subtrees_cut: 3,
            selections_pruned: 7,
            bound_evaluations: 11,
            incumbent_updates: 2,
            exhaustive_ns_per_winner: ex_ns,
            pruned_ns_per_winner: pr_ns,
        }
    }

    #[test]
    fn json_carries_families_counters_and_geomeans() {
        let entries = vec![
            entry("gemm", 64, 8, 8000.0, 2000.0),
            entry("moe", 36, 18, 9000.0, 3000.0),
        ];
        let json = to_json(&entries);
        assert!(json.contains("\"gemm\""));
        assert!(json.contains("\"candidates_scored_exhaustive\": 64"));
        assert!(json.contains("\"subtrees_cut\": 3"));
        // geomean(8.0, 2.0) = 4.0 for both the scored ratio and the speedup.
        assert!(json.contains("\"geomean_scored_ratio\": 4.000"));
        assert!(json.contains(&format!("\"geomean_speedup\": {:.3}", 12.0f64.sqrt())));
        let report = as_report(&entries).to_string();
        assert!(report.contains("8.0x"));
        assert!(report.contains("geomean scored-candidate reduction 4.00x"));
    }

    #[test]
    fn ratios_degrade_to_zero_rather_than_dividing_by_zero() {
        let starved = entry("gemm", 64, 0, 8000.0, 0.0);
        assert_eq!(starved.scored_ratio(), 0.0);
        assert_eq!(starved.speedup(), 0.0);
    }
}
