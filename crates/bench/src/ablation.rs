//! Fig. 14: ablation of the MoE kernel — reproducing Triton's dataflow or
//! Triton's shared-memory layout inside Hexcute.

use hexcute_arch::GpuArch;
use hexcute_baselines::{triton_latency_us, triton_moe_program};
use hexcute_core::{Compiler, CompilerOptions};
use hexcute_kernels::moe::{mixed_type_moe, MoeConfig, MoeDataflow, MoeShape};
use hexcute_synthesis::SynthesisOptions;

use crate::{compile_hexcute, geomean, Report};

/// The ablation latencies for one token count, in µs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AblationPoint {
    /// Number of input tokens.
    pub tokens: usize,
    /// Full Hexcute (efficient dataflow + synthesized layouts).
    pub hexcute_us: f64,
    /// Hexcute forced to use Triton's dataflow (Fig. 4(a)).
    pub triton_dataflow_us: f64,
    /// Hexcute forced to use Triton's shared-memory layout (row-major, no
    /// swizzle, no ldmatrix).
    pub triton_layout_us: f64,
    /// Triton itself.
    pub triton_us: f64,
}

/// Evaluates the ablation across token counts on the H100.
pub fn evaluate_ablation(tokens: &[usize]) -> Vec<AblationPoint> {
    let arch = GpuArch::h100();
    let config = MoeConfig::default();
    tokens
        .iter()
        .map(|&t| {
            let shape = MoeShape::deepseek_r1(t);
            let efficient =
                mixed_type_moe(shape, config, MoeDataflow::Efficient).expect("efficient MoE");
            let triton_flow =
                mixed_type_moe(shape, config, MoeDataflow::TritonStyle).expect("triton-flow MoE");

            let hexcute_us = compile_hexcute(&efficient, &arch).latency_us();
            // Ablation 1: Hexcute's layouts, Triton's dataflow.
            let triton_dataflow_us = compile_hexcute(&triton_flow, &arch).latency_us();
            // Ablation 2: Hexcute's dataflow, Triton's shared-memory layout.
            let layout_compiler = Compiler::with_options(
                arch.clone(),
                CompilerOptions {
                    synthesis: SynthesisOptions::triton_smem_layout(),
                    use_cost_model: true,
                },
            );
            let triton_layout_us = layout_compiler
                .compile(&efficient)
                .expect("layout ablation")
                .latency_us();
            let triton_us = triton_latency_us(
                &triton_moe_program(shape, config).expect("triton MoE"),
                &arch,
            )
            .expect("triton compile")
            .latency_us;
            AblationPoint {
                tokens: t,
                hexcute_us,
                triton_dataflow_us,
                triton_layout_us,
                triton_us,
            }
        })
        .collect()
}

/// Regenerates Fig. 14.
pub fn fig14(quick: bool) -> Report {
    let tokens = if quick {
        vec![16, 256]
    } else {
        vec![1, 16, 64, 256, 1024]
    };
    let points = evaluate_ablation(&tokens);
    let mut report = Report::new(
        "Fig. 14: MoE ablation (H100)",
        &[
            "tokens",
            "Hexcute (us)",
            "+Triton dataflow (us)",
            "+Triton smem layout (us)",
            "Triton (us)",
        ],
    );
    for p in &points {
        report.push_row(vec![
            p.tokens.to_string(),
            format!("{:.1}", p.hexcute_us),
            format!("{:.1}", p.triton_dataflow_us),
            format!("{:.1}", p.triton_layout_us),
            format!("{:.1}", p.triton_us),
        ]);
    }
    let dataflow_deg = geomean(
        &points
            .iter()
            .map(|p| p.triton_dataflow_us / p.hexcute_us)
            .collect::<Vec<_>>(),
    );
    let layout_deg = geomean(
        &points
            .iter()
            .map(|p| p.triton_layout_us / p.hexcute_us)
            .collect::<Vec<_>>(),
    );
    report.push_note(format!(
        "Measured degradations — Triton dataflow: {:.1}%, Triton smem layout: {:.1}%.",
        (dataflow_deg - 1.0) * 100.0,
        (layout_deg - 1.0) * 100.0
    ));
    report.push_note("Paper reports average degradations of 28.5% (dataflow) and 37.5% (layout).");
    report.push_note(
        "Even with Triton's dataflow, Hexcute stays ahead of Triton thanks to layout synthesis.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_ablations_degrade_and_stay_ahead_of_triton() {
        let points = evaluate_ablation(&[64]);
        let p = &points[0];
        assert!(p.triton_dataflow_us >= p.hexcute_us);
        assert!(p.triton_layout_us >= p.hexcute_us);
        // Reproducing Triton's dataflow alone still beats Triton itself
        // (the paper's key ablation observation).
        assert!(p.triton_dataflow_us < p.triton_us);
    }
}
