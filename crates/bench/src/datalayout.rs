//! Before/after measurements of the cache-conscious data-layout refactor
//! (PR 7): the lossy direct-mapped memo tier in front of the shared sharded
//! maps, measured on cold compiles of the paper's five workload families.
//!
//! Each family is synthesized and cost-ranked exactly like the compiler's
//! candidate-selection loop (cost model estimate + analytical perf
//! evaluation per candidate), twice per entry: once with the lossy tier
//! disabled via [`set_lossy_memo`] — the sharded maps alone, the PR 6
//! behaviour — and once with it enabled. Every iteration constructs fresh
//! model/evaluator instances, so their salted lossy keys never hit across
//! iterations: both sides stay *cold-compile* measurements, and the speedup
//! isolates the in-compile memo traffic (sibling candidates sharing most op
//! choices) that the refactor moves from lock-guarded hash maps onto
//! thread-local direct-mapped probes.
//!
//! The results feed `BENCH_pr7.json` via the `repro_datalayout` binary,
//! which also records the hit/miss/eviction counters of both tiers on one
//! instrumented cold compile per family.
//!
//! The lossy toggle only isolates the memo tier; the rest of the refactor
//! (arena-allocated prefix tree, interned tensor slots, bitmap injectivity,
//! bijective-swizzle scoring shortcut) is always on. To compare against the
//! true pre-refactor code, set `HEXCUTE_DATALAYOUT_BASELINE` to
//! per-candidate nanoseconds measured at the PR 6 commit with the same
//! synthesize-and-score loop (`family=ns,family=ns,...`), and optionally
//! `HEXCUTE_DATALAYOUT_BASELINE_SOURCE` to a provenance string; both flow
//! into the report and the JSON as a third comparison column.

use hexcute_arch::GpuArch;
use hexcute_costmodel::CostModel;
use hexcute_ir::Program;
use hexcute_kernels::attention::{mha_forward, AttentionConfig, AttentionShape};
use hexcute_kernels::gemm::{fp16_gemm, GemmConfig, GemmShape};
use hexcute_kernels::grouped_gemm::{grouped_gemm, GroupedGemmConfig, GroupedGemmShape};
use hexcute_kernels::moe::{mixed_type_moe, MoeConfig, MoeDataflow, MoeShape};
use hexcute_kernels::quant_gemm::{w4a16_gemm, QuantGemmConfig, QuantGemmShape};
use hexcute_layout::set_fast_path;
use hexcute_parallel::cache::CacheStats;
use hexcute_parallel::lossy::{self, set_lossy_memo};
use hexcute_sim::PerfEvaluator;
use hexcute_synthesis::{SynthesisOptions, Synthesizer};

use crate::fastpath::measure_ns;
use crate::report::Report;
use crate::{checks, geomean};

/// One family's before/after measurement plus the memo counters of one
/// instrumented cold compile with the lossy tier enabled.
#[derive(Debug, Clone)]
pub struct DataLayoutEntry {
    /// Workload family (`gemm`, `attention`, `moe`, `quant`, `grouped`).
    pub family: String,
    /// Sibling candidates the search enumerates for the family.
    pub candidates: usize,
    /// Median nanoseconds per candidate with the lossy tier disabled (the
    /// PR 6 sharded-map-only behaviour).
    pub reference_ns_per_candidate: f64,
    /// Median nanoseconds per candidate with the lossy tier enabled.
    pub fast_ns_per_candidate: f64,
    /// Per-candidate nanoseconds of the true pre-refactor code, injected via
    /// `HEXCUTE_DATALAYOUT_BASELINE` from a measurement at the PR 6 commit.
    pub pr6_ns_per_candidate: Option<f64>,
    /// Lossy-tier counters over the instrumented compile (all purposes).
    pub lossy: CacheStats,
    /// Shared per-op cost cache counters over the instrumented compile.
    pub shared_op_cost: CacheStats,
    /// Shared whole-candidate cache counters over the instrumented compile.
    pub shared_candidate: CacheStats,
    /// Shared bank-penalty cache counters over the instrumented compile.
    pub shared_bank: CacheStats,
}

impl DataLayoutEntry {
    /// Reference per-candidate cost over fast per-candidate cost.
    pub fn speedup(&self) -> f64 {
        if self.fast_ns_per_candidate > 0.0 {
            self.reference_ns_per_candidate / self.fast_ns_per_candidate
        } else {
            0.0
        }
    }

    /// Speedup over the injected PR 6 pre-refactor baseline, when present.
    pub fn speedup_vs_pr6(&self) -> Option<f64> {
        let pr6 = self.pr6_ns_per_candidate?;
        if self.fast_ns_per_candidate > 0.0 {
            Some(pr6 / self.fast_ns_per_candidate)
        } else {
            None
        }
    }
}

/// Parses `HEXCUTE_DATALAYOUT_BASELINE` (`family=ns,family=ns,...`) into
/// per-family per-candidate nanoseconds. Malformed pairs are skipped.
fn baseline_from_env() -> Vec<(String, f64)> {
    let Ok(raw) = std::env::var("HEXCUTE_DATALAYOUT_BASELINE") else {
        return Vec::new();
    };
    raw.split(',')
        .filter_map(|pair| {
            let (family, ns) = pair.split_once('=')?;
            let ns: f64 = ns.trim().parse().ok()?;
            (ns > 0.0).then(|| (family.trim().to_string(), ns))
        })
        .collect()
}

/// The cold-compile workload suite: the paper's five families at the shapes
/// the compile-time evaluation uses.
fn suite() -> Vec<(&'static str, Program)> {
    let quant_shape = QuantGemmShape::llama_70b_proj(64);
    vec![
        (
            "gemm",
            fp16_gemm(GemmShape::new(4096, 4096, 4096), GemmConfig::default())
                .expect("GEMM construction"),
        ),
        (
            "attention",
            mha_forward(
                AttentionShape::forward(8, 32, 2048, 128),
                AttentionConfig::default(),
            )
            .expect("attention construction"),
        ),
        (
            "moe",
            mixed_type_moe(
                MoeShape::deepseek_r1(128),
                MoeConfig::default(),
                MoeDataflow::Efficient,
            )
            .expect("MoE construction"),
        ),
        (
            "quant",
            w4a16_gemm(quant_shape, QuantGemmConfig::for_shape(&quant_shape))
                .expect("W4A16 GEMM construction"),
        ),
        (
            "grouped",
            grouped_gemm(&GroupedGemmShape::mixtral(64), GroupedGemmConfig::default())
                .expect("grouped GEMM construction"),
        ),
    ]
}

/// One cold synthesis + candidate-scoring pass, the compiler's selection
/// loop in miniature: fresh model and evaluator (fresh lossy salts — a true
/// cold compile even under repeated measurement), every candidate estimated
/// and perf-evaluated.
fn score_pass(program: &Program, arch: &GpuArch) -> usize {
    let candidates = Synthesizer::new(program, arch, SynthesisOptions::default())
        .synthesize()
        .expect("suite programs synthesize");
    let model = CostModel::new(arch);
    let evaluator = PerfEvaluator::new(arch);
    let n = candidates.len();
    for candidate in &candidates {
        let cost = model.estimate(program, candidate);
        std::hint::black_box(evaluator.evaluate(program, candidate, &cost));
    }
    n
}

/// Measures one family: per-candidate cold-compile cost with the lossy tier
/// off then on, plus both tiers' counters on one instrumented pass.
fn measure_family(family: &str, program: &Program, arch: &GpuArch) -> DataLayoutEntry {
    set_fast_path(true);

    // Instrumented pass first (lossy on): fresh caches, counters read after
    // a single cold compile.
    set_lossy_memo(true);
    let lossy_before = lossy::lossy_stats_total();
    let candidates = Synthesizer::new(program, arch, SynthesisOptions::default())
        .synthesize()
        .expect("suite programs synthesize");
    let model = CostModel::new(arch);
    let evaluator = PerfEvaluator::new(arch);
    for candidate in &candidates {
        let cost = model.estimate(program, candidate);
        std::hint::black_box(evaluator.evaluate(program, candidate, &cost));
    }
    let lossy_after = lossy::lossy_stats_total();
    let mut entry = DataLayoutEntry {
        family: family.to_string(),
        candidates: candidates.len(),
        reference_ns_per_candidate: 0.0,
        fast_ns_per_candidate: 0.0,
        pr6_ns_per_candidate: None,
        lossy: CacheStats {
            hits: lossy_after.hits - lossy_before.hits,
            misses: lossy_after.misses - lossy_before.misses,
            evictions: lossy_after.evictions - lossy_before.evictions,
            entries: lossy_after.entries,
        },
        shared_op_cost: model.op_cache_stats(),
        shared_candidate: model.candidate_cache_stats(),
        shared_bank: evaluator.bank_cache_stats(),
    };
    drop(candidates);

    // Timed passes: lossy off (PR 6 baseline) then on.
    set_lossy_memo(false);
    let reference_ns = measure_ns(
        || {
            std::hint::black_box(score_pass(program, arch));
        },
        5,
        40.0,
    );
    set_lossy_memo(true);
    let fast_ns = measure_ns(
        || {
            std::hint::black_box(score_pass(program, arch));
        },
        5,
        40.0,
    );
    let n = entry.candidates.max(1) as f64;
    entry.reference_ns_per_candidate = reference_ns / n;
    entry.fast_ns_per_candidate = fast_ns / n;
    entry
}

/// Runs the whole suite, leaving the lossy tier enabled afterwards.
///
/// The measured invariants are verified, not just printed: the lossy tier
/// must see traffic and a nonzero hit rate on every family's cold compile
/// (the sibling candidates of one search share most op choices, so a memo
/// in front of the op-cost and bank-penalty maps that never hits means the
/// wiring is broken).
pub fn run_suite() -> Vec<DataLayoutEntry> {
    let arch = GpuArch::a100();
    let baseline = baseline_from_env();
    let mut entries: Vec<DataLayoutEntry> = suite()
        .iter()
        .map(|(family, program)| measure_family(family, program, &arch))
        .collect();
    for e in &mut entries {
        e.pr6_ns_per_candidate = baseline
            .iter()
            .find(|(family, _)| family == &e.family)
            .map(|&(_, ns)| ns);
    }
    for e in &entries {
        checks::check(
            e.lossy.hits > 0,
            &format!(
                "family {}: the lossy tier saw no hits on a cold compile",
                e.family
            ),
        );
    }
    set_lossy_memo(true);
    entries
}

/// Geometric-mean per-candidate speedup over the suite.
pub fn geomean_speedup(entries: &[DataLayoutEntry]) -> f64 {
    let speedups: Vec<f64> = entries.iter().map(DataLayoutEntry::speedup).collect();
    geomean(&speedups)
}

/// Geometric-mean speedup over the injected PR 6 baseline; `None` unless
/// every entry carries a baseline figure.
pub fn geomean_speedup_vs_pr6(entries: &[DataLayoutEntry]) -> Option<f64> {
    let speedups: Vec<f64> = entries
        .iter()
        .map(DataLayoutEntry::speedup_vs_pr6)
        .collect::<Option<_>>()?;
    (!speedups.is_empty()).then(|| geomean(&speedups))
}

/// Formats the entries as a human-readable report.
pub fn as_report(entries: &[DataLayoutEntry]) -> Report {
    let mut report = Report::new(
        "Cache-conscious data layout: per-candidate cold-compile cost",
        &[
            "family",
            "candidates",
            "sharded-only /cand",
            "two-tier /cand",
            "speedup",
            "PR 6 /cand",
            "vs PR 6",
            "lossy hit rate",
        ],
    );
    for e in entries {
        report.push_row(vec![
            e.family.clone(),
            e.candidates.to_string(),
            format!("{:.2} µs", e.reference_ns_per_candidate / 1e3),
            format!("{:.2} µs", e.fast_ns_per_candidate / 1e3),
            format!("{:.2}x", e.speedup()),
            e.pr6_ns_per_candidate
                .map(|ns| format!("{:.2} µs", ns / 1e3))
                .unwrap_or_else(|| "-".to_string()),
            e.speedup_vs_pr6()
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "-".to_string()),
            format!("{:.1}%", e.lossy.hit_rate() * 100.0),
        ]);
    }
    report.push_note(format!(
        "geomean per-candidate speedup {:.2}x (lossy tier off = sharded maps only)",
        geomean_speedup(entries)
    ));
    if let Some(vs_pr6) = geomean_speedup_vs_pr6(entries) {
        report.push_note(format!(
            "geomean vs PR 6 pre-refactor baseline {vs_pr6:.2}x (injected via \
             HEXCUTE_DATALAYOUT_BASELINE)"
        ));
    }
    report
}

fn stats_json(stats: &CacheStats) -> String {
    format!(
        "{{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {:.4}}}",
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.hit_rate()
    )
}

/// Serializes the suite as the `BENCH_pr7.json` document: per-family
/// per-candidate costs, the two-tier memo counters of one instrumented cold
/// compile, and the suite geomean.
pub fn to_json(entries: &[DataLayoutEntry]) -> String {
    let mut out = format!(
        "{{\n  \"benchmark\": \"cache-conscious data layout\",\n  \"meta\": {{\n    \
         \"threads\": {},\n    \"host_parallelism\": {},\n    \"os\": \"{}\",\n    \
         \"arch\": \"{}\",\n    \"lossy_capacity\": {},\n    \
         \"pr6_baseline_source\": {}\n  }},\n  \"families\": {{\n",
        hexcute_parallel::worker_count(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        std::env::consts::OS,
        std::env::consts::ARCH,
        lossy::lossy_capacity(),
        std::env::var("HEXCUTE_DATALAYOUT_BASELINE_SOURCE")
            .map(|s| format!("\"{}\"", s.replace('"', "'")))
            .unwrap_or_else(|_| "null".to_string()),
    );
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\n      \"candidates\": {},\n      \
             \"reference_ns_per_candidate\": {:.1},\n      \
             \"fast_ns_per_candidate\": {:.1},\n      \"speedup\": {:.3},\n      \
             \"pr6_baseline_ns_per_candidate\": {},\n      \"speedup_vs_pr6\": {},\n      \
             \"tiers\": {{\n        \"lossy\": {},\n        \"shared_op_cost\": {},\n        \
             \"shared_candidate\": {},\n        \"shared_bank\": {}\n      }}\n    }}{}\n",
            e.family,
            e.candidates,
            e.reference_ns_per_candidate,
            e.fast_ns_per_candidate,
            e.speedup(),
            e.pr6_ns_per_candidate
                .map(|ns| format!("{ns:.1}"))
                .unwrap_or_else(|| "null".to_string()),
            e.speedup_vs_pr6()
                .map(|s| format!("{s:.3}"))
                .unwrap_or_else(|| "null".to_string()),
            stats_json(&e.lossy),
            stats_json(&e.shared_op_cost),
            stats_json(&e.shared_candidate),
            stats_json(&e.shared_bank),
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    out.push_str(&format!(
        "  }},\n  \"geomean_speedup\": {:.3},\n  \"geomean_speedup_vs_pr6\": {}\n}}\n",
        geomean_speedup(entries),
        geomean_speedup_vs_pr6(entries)
            .map(|s| format!("{s:.3}"))
            .unwrap_or_else(|| "null".to_string()),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(family: &str, reference: f64, fast: f64) -> DataLayoutEntry {
        DataLayoutEntry {
            family: family.to_string(),
            candidates: 8,
            reference_ns_per_candidate: reference,
            fast_ns_per_candidate: fast,
            pr6_ns_per_candidate: None,
            lossy: CacheStats {
                hits: 30,
                misses: 10,
                evictions: 2,
                entries: 8,
            },
            shared_op_cost: CacheStats::default(),
            shared_candidate: CacheStats::default(),
            shared_bank: CacheStats::default(),
        }
    }

    #[test]
    fn json_carries_families_tiers_and_geomean() {
        let entries = vec![entry("gemm", 4000.0, 1000.0), entry("moe", 9000.0, 3000.0)];
        let json = to_json(&entries);
        assert!(json.contains("\"gemm\""));
        assert!(json.contains("\"lossy\": {\"hits\": 30"));
        // geomean(4.0, 3.0) = sqrt(12)
        assert!(json.contains(&format!("\"geomean_speedup\": {:.3}", 12.0f64.sqrt())));
        let report = as_report(&entries).to_string();
        assert!(report.contains("4.00x"));
        // No baseline injected: the vs-PR 6 figures degrade to null/dash.
        assert!(json.contains("\"speedup_vs_pr6\": null"));
        assert!(json.contains("\"geomean_speedup_vs_pr6\": null"));
    }

    #[test]
    fn injected_pr6_baseline_flows_into_json_and_report() {
        let mut entries = vec![entry("gemm", 4000.0, 1000.0), entry("moe", 9000.0, 3000.0)];
        entries[0].pr6_ns_per_candidate = Some(8000.0);
        assert_eq!(entries[0].speedup_vs_pr6(), Some(8.0));
        // One family missing a baseline → no suite geomean.
        assert!(geomean_speedup_vs_pr6(&entries).is_none());
        entries[1].pr6_ns_per_candidate = Some(6000.0);
        // geomean(8.0, 2.0) = 4.0
        assert_eq!(geomean_speedup_vs_pr6(&entries), Some(4.0));
        let json = to_json(&entries);
        assert!(json.contains("\"pr6_baseline_ns_per_candidate\": 8000.0"));
        assert!(json.contains("\"geomean_speedup_vs_pr6\": 4.000"));
        let report = as_report(&entries).to_string();
        assert!(report.contains("geomean vs PR 6 pre-refactor baseline 4.00x"));
    }
}
