//! Regenerates the Section VII-C compile-time statistics.
fn main() {
    println!("{}", hexcute_bench::compile_time::compile_time_report());
    hexcute_bench::print_shared_cache_summary();
    hexcute_bench::checks::exit_if_failed();
}
