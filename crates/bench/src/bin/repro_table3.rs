//! Regenerates Table III (MoE bytes per instruction).
fn main() {
    println!("{}", hexcute_bench::tables34::table3());
    hexcute_bench::print_shared_cache_summary();
    hexcute_bench::checks::exit_if_failed();
}
