//! Regenerates Fig. 11 (mixed-type MoE latency sweep). Pass `--full` for the full token sweep.
fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    println!("{}", hexcute_bench::moe_bench::fig11(quick));
    hexcute_bench::print_shared_cache_summary();
    hexcute_bench::checks::exit_if_failed();
}
