//! Measures the incremental prefix-shared candidate evaluation against the
//! PR 1 fast path (full re-evaluation per candidate, flat-layout fast path
//! enabled on both sides) and writes the machine-readable comparison
//! committed as `BENCH_pr2.json`.
//!
//! Usage: `cargo run --release --bin repro_incremental [-- output.json]`

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr2.json".to_string());
    let entries = hexcute_bench::fastpath::synthesis_incremental_entries();
    print!("{}", hexcute_bench::fastpath::as_report(&entries));
    hexcute_bench::print_shared_cache_summary();
    match hexcute_bench::fastpath::write_json_named(
        &out_path,
        "incremental prefix-shared candidate evaluation",
        &entries,
    ) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    hexcute_bench::checks::exit_if_failed();
}
