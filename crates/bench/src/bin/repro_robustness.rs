//! Chaos-replay reproduction for the fault-tolerant compile service
//! (PR 6, extended in PR 8 with the cancellation ladder): replays the
//! Fig. 13 serving trace under several fault schedules (disk chaos,
//! synthesis panics, worker deaths, deadline pressure, admission overload,
//! cancellation storm) and writes the machine-readable summary committed
//! as `BENCH_pr8.json`.
//!
//! The process exits nonzero unless every schedule stays above its
//! availability floor, every served artifact is bit-identical to the
//! fault-free reference, and no schedule exceeds its wall-clock bound.
//!
//! Usage: `cargo run --release --bin repro_robustness [-- output.json]`

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr8.json".to_string());

    // The injector must be inert unless the environment opts in: a plain
    // run (like the CI bench smoke) must not construct a global injector.
    if std::env::var("HEXCUTE_FAULTS").is_err() {
        hexcute_bench::checks::check(
            hexcute_core::faults::global().is_none(),
            "no global fault injector may exist when HEXCUTE_FAULTS is unset",
        );
    }

    let (results, (trace_kernels, distinct)) = hexcute_bench::robustness_bench::run_all();

    println!("Chaos replay: {trace_kernels} kernels/pass, {distinct} distinct fingerprints\n");
    println!(
        "{:<18} {:>6} {:>6} {:>6} {:>6} {:>7} {:>7} {:>6} {:>6} {:>9} {:>9} {:>7}",
        "schedule",
        "avail",
        "floor",
        "ok",
        "fail",
        "shed",
        "dline",
        "retry",
        "panic",
        "p50_ms",
        "p99_ms",
        "wall_s"
    );
    for r in &results {
        println!(
            "{:<18} {:>6.3} {:>6.2} {:>6} {:>6} {:>7} {:>7} {:>6} {:>6} {:>9.2} {:>9.2} {:>7.1}",
            r.name,
            r.availability,
            r.floor,
            r.ok,
            r.failed,
            r.shed,
            r.deadline_expired,
            r.retries,
            r.synth_panics,
            r.p50_ms,
            r.p99_ms,
            r.wall_s
        );
    }
    println!();
    for r in &results {
        println!(
            "{}: spec={} coalesced={} syntheses={} max_queue_depth={} quarantined={} \
             write_failures={} breaker_trips={}/{} stale_version={} injected={} \
             pool jobs/items/deaths/respawns={}/{}/{}/{} mismatches={} \
             cancelled={} watchdog_trips={} shutdown_drained={} pool_cancelled={} \
             cancel_free_p99_ms={:.2}",
            r.name,
            r.spec,
            r.coalesced,
            r.syntheses,
            r.max_queue_depth,
            r.quarantined,
            r.write_failures,
            r.breaker_trips,
            r.breaker_recoveries,
            r.stale_version,
            r.injected_faults,
            r.pool_jobs,
            r.pool_items,
            r.pool_deaths,
            r.pool_respawns,
            r.mismatches,
            r.synth_cancelled,
            r.watchdog_trips,
            r.shutdown_drained,
            r.pool_cancelled,
            r.cancel_free_p99_ms
        );
    }

    let json = hexcute_bench::robustness_bench::to_json(&results, trace_kernels, distinct);
    match hexcute_bench::write_output(&out_path, &json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    hexcute_bench::print_shared_cache_summary();
    hexcute_bench::checks::exit_if_failed();
}
