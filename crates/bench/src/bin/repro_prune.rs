//! Pruned-synthesis reproduction (PR 9): candidates scored and wall-clock
//! per winner of the branch-and-bound search against the exhaustive
//! selection loop, over the paper's five workload families with the
//! `max_candidates` cap relaxed (enlarged choice spaces). Writes the
//! machine-readable summary committed as `BENCH_pr9.json`.
//!
//! The process exits nonzero unless the pruned winner is bit-identical to
//! the exhaustive argmin on every family, pruning scores at least 2x fewer
//! candidates, and its wall-clock per winner is lower.
//!
//! Usage: `cargo run --release --bin repro_prune [-- output.json]`

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr9.json".to_string());

    let entries = hexcute_bench::prune::run_suite();
    println!("{}", hexcute_bench::prune::as_report(&entries));

    let json = hexcute_bench::prune::to_json(&entries);
    match hexcute_bench::write_output(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }

    hexcute_bench::print_shared_cache_summary();
    hexcute_bench::checks::exit_if_failed();
}
