//! Measures the flat-layout fast path against the recursive reference path
//! (layout algebra, functional simulation, candidate synthesis) and writes
//! the machine-readable comparison consumed by CI and committed as
//! `BENCH_pr1.json`.
//!
//! Usage: `cargo run --release --bin repro_fastpath [-- output.json]`

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr1.json".to_string());
    let entries = hexcute_bench::fastpath::run_all();
    print!("{}", hexcute_bench::fastpath::as_report(&entries));
    hexcute_bench::print_shared_cache_summary();
    match hexcute_bench::fastpath::write_json(&out_path, &entries) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    hexcute_bench::checks::exit_if_failed();
}
