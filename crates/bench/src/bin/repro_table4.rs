//! Regenerates Table IV (Mamba scan bytes per instruction).
fn main() {
    println!("{}", hexcute_bench::tables34::table4());
}
