//! Regenerates Table IV (Mamba scan bytes per instruction).
fn main() {
    println!("{}", hexcute_bench::tables34::table4());
    hexcute_bench::print_shared_cache_summary();
    hexcute_bench::checks::exit_if_failed();
}
