//! Measures cold vs. warm serving throughput over the persistent
//! kernel-artifact cache and the batched compile service (PR 4), and writes
//! the machine-readable comparison committed as `BENCH_pr4.json`.
//!
//! The request stream (every Fig. 13 model × batch size) is served three
//! times: cold (empty cache), memory-warm (same service) and disk-warm (a
//! fresh service over the same cache directory, i.e. a process restart).
//! Warm results are asserted bit-identical to cold ones.
//!
//! The cache directory defaults to a per-process temporary directory
//! (removed afterwards); set `HEXCUTE_CACHE_DIR` to persist the artifacts —
//! the harness then uses a fresh per-process subdirectory underneath it, so
//! the cold pass stays genuinely cold on repeat runs (a pre-populated
//! directory would silently measure warm-vs-warm).
//!
//! Usage: `cargo run --release --bin repro_serving [-- output.json]`

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr4.json".to_string());
    let (cache_dir, transient) = match std::env::var("HEXCUTE_CACHE_DIR") {
        Ok(dir) => (
            std::path::PathBuf::from(dir).join(format!("repro-serving-{}", std::process::id())),
            false,
        ),
        Err(_) => (
            std::env::temp_dir().join(format!("hexcute-serving-cache-{}", std::process::id())),
            true,
        ),
    };

    let (entries, notes) = hexcute_bench::serving_bench::serving_entries(&cache_dir);
    let mut report = hexcute_bench::fastpath::as_report(&entries);
    report.title = "Serving: cold vs. warm kernel-artifact cache".to_string();
    for note in &notes {
        report.push_note(note.clone());
    }
    print!("{report}");
    hexcute_bench::print_shared_cache_summary();

    if transient {
        std::fs::remove_dir_all(&cache_dir).ok();
    } else {
        println!("\nartifact cache persisted at {}", cache_dir.display());
    }

    match hexcute_bench::fastpath::write_json_named(
        &out_path,
        "persistent kernel-artifact cache + batched compile service",
        &entries,
    ) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    hexcute_bench::checks::exit_if_failed();
}
