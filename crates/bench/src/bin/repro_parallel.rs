//! Measures the parallel prefix-tree search (persistent worker pool +
//! subtree split + shared sharded memo caches) against the PR 2
//! serial-incremental walk, and writes the machine-readable scaling curves
//! committed as `BENCH_pr3.json` (one `synthesis_parallel_w{N}` group per
//! worker count; the group geomean is that worker count's end-to-end
//! synthesize+compile speedup over the serial baseline).
//!
//! Also reports the prefix-search sharing counters and per-cache
//! hit/miss/eviction statistics for each kernel family.
//!
//! Usage: `cargo run --release --bin repro_parallel [-- output.json]`

use hexcute_arch::GpuArch;
use hexcute_kernels::attention::{mha_forward, AttentionConfig, AttentionShape};
use hexcute_kernels::gemm::{fp16_gemm, GemmConfig, GemmShape};
use hexcute_kernels::moe::{mixed_type_moe, MoeConfig, MoeDataflow, MoeShape};
use hexcute_synthesis::{SynthesisOptions, Synthesizer};

fn print_prefix_stats() {
    if !hexcute_synthesis::incremental_enabled() {
        println!(
            "\nPrefix-search stats skipped: the incremental search is disabled \
             (HEXCUTE_DISABLE_INCREMENTAL)."
        );
        return;
    }
    let arch = GpuArch::a100();
    let workers = *hexcute_bench::fastpath::scaling_worker_counts()
        .last()
        .unwrap_or(&1);
    let kernels = [
        (
            "gemm",
            fp16_gemm(GemmShape::new(4096, 4096, 4096), GemmConfig::default()).unwrap(),
        ),
        (
            "attention",
            mha_forward(
                AttentionShape::forward(8, 32, 2048, 128),
                AttentionConfig::default(),
            )
            .unwrap(),
        ),
        (
            "moe",
            mixed_type_moe(
                MoeShape::deepseek_r1(128),
                MoeConfig::default(),
                MoeDataflow::Efficient,
            )
            .unwrap(),
        ),
    ];
    println!("\nPrefix-search stats at {workers} workers (auto subtree depth):");
    for (name, program) in &kernels {
        let options = SynthesisOptions {
            parallel_workers: Some(workers),
            ..SynthesisOptions::default()
        };
        let (candidates, stats) = Synthesizer::new(program, &arch, options)
            .synthesize_with_stats()
            .unwrap();
        let stats = stats.expect("incremental search reports stats");
        println!(
            "  {name}: {} candidates over {} subtrees, {} edges expanded, \
             {} layouts computed / {} reused; finished-layout memo: {}",
            candidates.len(),
            stats.subtrees,
            stats.nodes_expanded,
            stats.tensor_layouts_computed,
            stats.tensor_layout_hits,
            stats.finished_cache,
        );
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr3.json".to_string());
    let entries = hexcute_bench::fastpath::synthesis_parallel_entries();
    print!("{}", hexcute_bench::fastpath::as_report(&entries));
    print_prefix_stats();
    hexcute_bench::print_shared_cache_summary();
    match hexcute_bench::fastpath::write_json_named(
        &out_path,
        "parallel prefix-tree search over a persistent worker pool",
        &entries,
    ) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    hexcute_bench::checks::exit_if_failed();
}
