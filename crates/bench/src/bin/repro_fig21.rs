//! Regenerates Fig. 21 (Mamba selective scan). Pass `--full` for all 20 shapes.
fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    println!("{}", hexcute_bench::scan_bench::fig21(quick));
    hexcute_bench::print_shared_cache_summary();
    hexcute_bench::checks::exit_if_failed();
}
