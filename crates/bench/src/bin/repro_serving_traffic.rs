//! Multi-tenant bursty serving-traffic reproduction for the priority-aware
//! admission front-end (PR 10): eight tenants replay thousands of
//! cold/warm-mixed requests over all five Fig. 13 models' decode-step
//! kernels, ~10% in the background class, and the run writes the
//! machine-readable summary committed as `BENCH_pr10.json`.
//!
//! The process exits nonzero unless the scheduling invariants hold: zero
//! priority inversions, no starved tenant, at least one speculative
//! warm-tier hit, and every served artifact bit-identical to a
//! fresh-compile reference.
//!
//! Usage: `cargo run --release --bin repro_serving_traffic [-- output.json]`

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr10.json".to_string());

    let config = hexcute_bench::traffic::TrafficConfig::default();
    let result = hexcute_bench::traffic::run(&config);

    println!(
        "Serving traffic: {} requests, {} tenants, {} distinct kernels, {:.1} req/s over {:.1}s\n",
        result.requests, config.tenants, result.distinct, result.requests_per_sec, result.wall_s
    );
    println!(
        "{:<18} {:>9} {:>10} {:>10} {:>10}",
        "class", "requests", "p50_ms", "p99_ms", "p999_ms"
    );
    for (name, class) in [
        ("latency_critical", &result.latency_critical),
        ("background", &result.background),
    ] {
        println!(
            "{:<18} {:>9} {:>10.3} {:>10.3} {:>10.3}",
            name, class.requests, class.p50_ms, class.p99_ms, class.p999_ms
        );
    }
    println!();
    println!(
        "served: memory={} disk={} synthesized={} coalesced={} (hit rate {:.1}%)",
        result.from_memory,
        result.from_disk,
        result.from_synthesis,
        result.from_coalesced,
        result.hit_rate * 100.0
    );
    let stats = &result.stats;
    println!(
        "scheduling: max_queue_depth={} boosts={} inversions={} shed={} \
         slot_utilization={:.1}%",
        stats.max_queue_depth,
        stats.background_boosts,
        stats.priority_inversions,
        stats.shed,
        result.slot_utilization * 100.0
    );
    println!(
        "prefetch: issued={} warmed={} dropped={} hits={} (warm-hit share {:.1}%)",
        stats.prefetch_issued,
        stats.prefetch_warmed,
        stats.prefetch_dropped,
        stats.prefetch_hits,
        result.prefetch_hit_share * 100.0
    );
    println!("determinism: {} mismatches", result.mismatches);

    let json = hexcute_bench::traffic::to_json(&config, &result);
    match hexcute_bench::write_output(&out_path, &json) {
        Ok(()) => println!("\nWrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    hexcute_bench::checks::exit_if_failed();
}
