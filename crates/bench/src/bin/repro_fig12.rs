//! Regenerates Fig. 12 (cost-model accuracy). Pass `--full` for all 16 shapes.
fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    println!("{}", hexcute_bench::cost_model::fig12(quick));
    hexcute_bench::print_shared_cache_summary();
    hexcute_bench::checks::exit_if_failed();
}
