//! Regenerates Fig. 13 (end-to-end vLLM latency). Pass `--full` for more batch sizes.
fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    println!("{}", hexcute_bench::end_to_end::fig13(quick));
    hexcute_bench::print_shared_cache_summary();
    hexcute_bench::checks::exit_if_failed();
}
