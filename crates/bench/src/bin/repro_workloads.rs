//! Benchmarks the PR 5 workload families and writes the machine-readable
//! comparison committed as `BENCH_pr5.json`:
//!
//! * synthesized W4A16 quantized GEMM vs. the Marlin hand-written-kernel
//!   model (`quant_gemm_vs_marlin`; geomean ≈ 1.0 means parity),
//! * fused grouped GEMM vs. one-kernel-launch-per-expert dispatch
//!   (`grouped_vs_per_expert`),
//! * cold vs. warm artifact-cache compiles of both families, with warm
//!   results checked bit-identical (`workload_compile_warm`).
//!
//! Any failed internal check (bit-identity, cache hit, regime) exits
//! nonzero. Pass `--full` for the full token/expert sweeps.
//!
//! Usage: `cargo run --release --bin repro_workloads [-- output.json]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = !args.iter().any(|a| a == "--full");
    let out_path = args
        .iter()
        .find(|a| a.as_str() != "--full")
        .cloned()
        .unwrap_or_else(|| "BENCH_pr5.json".to_string());

    let mut entries = hexcute_bench::workloads_bench::quant_gemm_entries(quick);
    entries.extend(hexcute_bench::workloads_bench::grouped_gemm_entries(quick));
    let cache_dir =
        std::env::temp_dir().join(format!("hexcute-workloads-cache-{}", std::process::id()));
    entries.extend(hexcute_bench::workloads_bench::workload_cache_entries(
        &cache_dir,
    ));
    std::fs::remove_dir_all(&cache_dir).ok();

    let mut report = hexcute_bench::fastpath::as_report(&entries);
    report.title =
        "Workload families: quantized & grouped GEMM vs. baselines, cold vs. warm".to_string();
    report.push_note(
        "quant_gemm_vs_marlin: reference = Marlin model, fast = synthesized \
         (geomean ~1.0 = parity with the hand-written kernel)",
    );
    report.push_note(
        "grouped_vs_per_expert: reference = one launch per expert, fast = fused grouped GEMM",
    );
    print!("{report}");
    hexcute_bench::print_shared_cache_summary();

    match hexcute_bench::fastpath::write_json_named(
        &out_path,
        "quantized & grouped workload families",
        &entries,
    ) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    hexcute_bench::checks::exit_if_failed();
}
