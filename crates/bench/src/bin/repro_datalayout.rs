//! Data-layout reproduction (PR 7): per-candidate cold-compile cost of the
//! search core with the lossy direct-mapped memo tier disabled (the PR 6
//! sharded-map baseline) vs enabled, over the paper's five workload
//! families, plus both tiers' hit/miss/eviction counters on one
//! instrumented compile each. Writes the machine-readable summary committed
//! as `BENCH_pr7.json`.
//!
//! The process exits nonzero unless the lossy tier sees a nonzero hit rate
//! on every family's cold compile and the shared-cache warm-repeat
//! invariants hold.
//!
//! Usage: `cargo run --release --bin repro_datalayout [-- output.json]`

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr7.json".to_string());

    let entries = hexcute_bench::datalayout::run_suite();
    println!("{}", hexcute_bench::datalayout::as_report(&entries));

    let json = hexcute_bench::datalayout::to_json(&entries);
    match hexcute_bench::write_output(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }

    hexcute_bench::print_shared_cache_summary();
    hexcute_bench::checks::exit_if_failed();
}
