//! Regenerates every table and figure of the paper's evaluation in one run.
//! Pass `--full` for the full shape/token sweeps (slower).
fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    println!("{}", hexcute_bench::table2::table2(quick));
    println!("{}", hexcute_bench::tables34::table3());
    println!("{}", hexcute_bench::tables34::table4());
    println!("{}", hexcute_bench::moe_bench::fig11(quick));
    println!("{}", hexcute_bench::cost_model::fig12(quick));
    println!("{}", hexcute_bench::end_to_end::fig13(quick));
    println!("{}", hexcute_bench::ablation::fig14(quick));
    println!("{}", hexcute_bench::scan_bench::fig21(quick));
    for report in hexcute_bench::per_shape::all_figures(quick) {
        println!("{report}");
    }
    println!("{}", hexcute_bench::compile_time::compile_time_report());
    hexcute_bench::print_shared_cache_summary();
    hexcute_bench::checks::exit_if_failed();
}
