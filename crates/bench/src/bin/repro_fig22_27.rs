//! Regenerates Figs. 22-27 (per-shape kernel performance).
//! Usage: `repro_fig22_27 [--fig N] [--full]`.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = !args.iter().any(|a| a == "--full");
    let figure = args
        .iter()
        .position(|a| a == "--fig")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u32>().ok());
    match figure {
        Some(f) => println!("{}", hexcute_bench::per_shape::per_shape_figure(f, quick)),
        None => {
            for report in hexcute_bench::per_shape::all_figures(quick) {
                println!("{report}");
            }
        }
    }
    hexcute_bench::print_shared_cache_summary();
    hexcute_bench::checks::exit_if_failed();
}
