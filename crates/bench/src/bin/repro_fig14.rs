//! Regenerates Fig. 14 (MoE ablation). Pass `--full` for the full token sweep.
fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    println!("{}", hexcute_bench::ablation::fig14(quick));
    hexcute_bench::print_shared_cache_summary();
    hexcute_bench::checks::exit_if_failed();
}
