//! Regenerates Table II of the paper. Pass `--full` for the full shape sweep.
fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    println!("{}", hexcute_bench::table2::table2(quick));
    hexcute_bench::print_shared_cache_summary();
    hexcute_bench::checks::exit_if_failed();
}
