//! Figs. 22–27: per-shape latency of Triton, the CUDA library and Hexcute
//! for each of the six Table II operator families.

use crate::table2::{evaluate_family, OperatorFamily};
use crate::{geomean, Report};

/// The figure numbers of the per-shape plots and their operator families.
pub fn figure_families() -> Vec<(u32, OperatorFamily)> {
    vec![
        (22, OperatorFamily::Fp16GemmA100),
        (23, OperatorFamily::MhaForwardA100),
        (24, OperatorFamily::MhaDecodingA100),
        (25, OperatorFamily::WarpSpecializedGemmH100),
        (26, OperatorFamily::Fp8GemmH100),
        (27, OperatorFamily::MhaForwardH100),
    ]
}

/// Regenerates one of Figs. 22–27.
///
/// # Panics
///
/// Panics if `figure` is not in `22..=27`.
pub fn per_shape_figure(figure: u32, quick: bool) -> Report {
    let (_, family) = figure_families()
        .into_iter()
        .find(|(f, _)| *f == figure)
        .unwrap_or_else(|| panic!("figure {figure} is not one of Figs. 22-27"));
    let results = evaluate_family(family, quick);
    let mut report = Report::new(
        format!("Fig. {figure}: {} per-shape latency", family.name()),
        &[
            "shape",
            "Triton (us)",
            family.baseline_library().name(),
            "Hexcute (us)",
            "Hexcute vs baseline",
            "Hexcute vs Triton",
        ],
    );
    for (shape, r) in &results {
        report.push_row(vec![
            shape.label(),
            format!("{:.1}", r.triton_us),
            format!("{:.1}", r.library_us),
            format!("{:.1}", r.hexcute_us),
            format!("{:.2}x", r.library_us / r.hexcute_us),
            format!("{:.2}x", r.triton_us / r.hexcute_us),
        ]);
    }
    let vs_lib = geomean(
        &results
            .iter()
            .map(|(_, r)| r.library_us / r.hexcute_us)
            .collect::<Vec<_>>(),
    );
    let vs_triton = geomean(
        &results
            .iter()
            .map(|(_, r)| r.triton_us / r.hexcute_us)
            .collect::<Vec<_>>(),
    );
    report.push_note(format!(
        "Measured geometric means — vs {}: {vs_lib:.2}x, vs Triton: {vs_triton:.2}x.",
        family.baseline_library().name()
    ));
    report.push_note("Paper geometric means (Figs. 22-27): 1.00x/1.33x, 1.05x/1.13x, 1.02x/2.06x, 1.25x/1.94x, 1.17x/2.36x, 1.27x/2.25x.");
    report
}

/// Regenerates all six per-shape figures.
pub fn all_figures(quick: bool) -> Vec<Report> {
    figure_families()
        .into_iter()
        .map(|(f, _)| per_shape_figure(f, quick))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_figures_are_mapped() {
        let figures: Vec<u32> = figure_families().iter().map(|(f, _)| *f).collect();
        assert_eq!(figures, vec![22, 23, 24, 25, 26, 27]);
    }

    #[test]
    fn fig24_decoding_beats_triton_clearly() {
        let report = per_shape_figure(24, true);
        assert!(!report.rows.is_empty());
        for row in &report.rows {
            let vs_triton: f64 = row[5].trim_end_matches('x').parse().unwrap();
            assert!(
                vs_triton >= 1.0,
                "decoding should not lose to Triton: {}",
                row[0]
            );
        }
    }

    #[test]
    #[should_panic(expected = "not one of Figs")]
    fn rejects_unknown_figures() {
        per_shape_figure(99, true);
    }
}
