//! Chaos-replay harness for the fault-tolerant compile service (PR 6).
//!
//! Replays the Fig. 13 serving trace (every model × batch size, expanded to
//! the per-decode-step kernel programs) from several concurrent clients
//! against a disk-backed [`CompileService`], once per **fault schedule**:
//! a fault-free reference, disk chaos (corrupt reads, failed writes, stale
//! versions, I/O latency), a synthesis panic storm, worker-pool deaths,
//! deadline pressure, admission overload, and a cancellation storm (PR 8:
//! stalled searches under per-request deadlines, a synthesis watchdog and
//! a mid-burst shutdown — every abort must be a typed error, free its
//! admission slot promptly, and never cache a partial result).
//!
//! Three properties are *checked*, not just reported, and any violation
//! fails the process through [`crate::checks`]:
//!
//! 1. **Bit-identity** — every artifact served under faults equals the
//!    fault-free reference artifact for the same fingerprint.
//! 2. **Availability floors** — each schedule must keep at least its
//!    configured fraction of requests succeeding (1.0 for the fault-free
//!    and disk-chaos schedules: disk-level faults must be fully
//!    transparent).
//! 3. **Bounded wall clock** — a schedule that exceeds its time budget is
//!    reported as a deadlock and the process exits nonzero immediately.
//!
//! The per-schedule counters (shed, deadline-expired, retries, panics,
//! quarantines, breaker trips, queue depths, pool deaths/respawns) feed
//! `BENCH_pr8.json` via the `repro_robustness` binary.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use hexcute_arch::GpuArch;
use hexcute_core::{
    faults, CompileError, CompilerOptions, FaultInjector, FaultKind, FaultSpec, KernelArtifact,
    KernelCacheConfig, SynthesisOptions,
};
use hexcute_e2e::{
    decode_latency_ms_with, decode_step_programs, CompileService, KernelBackend, ModelConfig,
    ServiceConfig,
};
use hexcute_ir::Program;
use hexcute_parallel::pool_stats;

use crate::checks;

/// Hard per-schedule wall-clock budget: exceeding it is treated as a
/// deadlock (hung coalesced waiter, stuck queue) and fails the process.
pub const SCHEDULE_WALL_LIMIT: Duration = Duration::from_secs(600);

/// Upper bound on the p99 cancel-to-worker-free latency: a cancelled
/// synthesis must release its admission slot within the cancellation-poll
/// granularity (one search row plus an interruptible stall slice), never
/// hold it for the rest of the search.
pub const CANCEL_FREE_P99_LIMIT: Duration = Duration::from_millis(500);

/// One fault schedule: an injected-fault mix plus the service policy and
/// client pressure it is replayed under.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Schedule name (JSON key).
    pub name: &'static str,
    /// What the schedule stresses.
    pub description: &'static str,
    /// Injected faults; `None` replays fault-free.
    pub spec: Option<FaultSpec>,
    /// Whether the worker-pool fault hook is installed for this schedule.
    pub pool_hook: bool,
    /// Whether the synthesis fault hook (search-row stalls, cancel races)
    /// is installed for this schedule.
    pub synth_hook: bool,
    /// Admission: concurrent synthesis slots (0 = unbounded).
    pub max_concurrent: usize,
    /// Admission: pending-queue capacity.
    pub queue_capacity: usize,
    /// Per-request deadline.
    pub deadline: Option<Duration>,
    /// Per-synthesis watchdog budget ([`ServiceConfig::watchdog`]).
    pub watchdog: Option<Duration>,
    /// Shut the cold service down once half of its pass-1 requests have
    /// arrived — queued waiters must drain typed and in-flight syntheses
    /// must cancel, mid-burst.
    pub shutdown_mid_burst: bool,
    /// Retry budget for transient failures.
    pub max_retries: usize,
    /// Concurrent client threads replaying the trace.
    pub clients: usize,
    /// Explicit synthesis worker count (`None` follows `HEXCUTE_THREADS`).
    /// Pool-fault schedules pin this so the search actually fans out.
    pub workers: Option<usize>,
    /// Minimum fraction of requests that must succeed.
    pub floor: f64,
    /// After the replay, verify the trace covered every decode-step kernel
    /// (serving the full model matrix again must synthesize nothing new).
    /// Only meaningful when replaying [`default_trace`] fault-free.
    pub verify_decode_coverage: bool,
}

/// The replayed fault schedules, fault-free reference first.
pub fn schedules() -> Vec<Schedule> {
    let base = Schedule {
        name: "fault_free",
        description: "reference replay, no injected faults",
        spec: None,
        pool_hook: false,
        synth_hook: false,
        max_concurrent: 0,
        queue_capacity: 64,
        deadline: None,
        watchdog: None,
        shutdown_mid_burst: false,
        max_retries: 2,
        clients: 4,
        workers: None,
        floor: 1.0,
        verify_decode_coverage: false,
    };
    vec![
        Schedule {
            verify_decode_coverage: true,
            ..base.clone()
        },
        Schedule {
            name: "disk_chaos",
            description: "corrupt reads, failed writes, stale versions, I/O latency",
            spec: Some(
                FaultSpec {
                    io_delay: Duration::from_micros(200),
                    ..FaultSpec::default()
                }
                .with_rate(FaultKind::DiskReadCorrupt, 0.30)
                .with_rate(FaultKind::DiskWriteFail, 0.20)
                .with_rate(FaultKind::StaleVersion, 0.10)
                .with_seed(7),
            ),
            floor: 1.0, // disk faults must be fully transparent
            ..base.clone()
        },
        Schedule {
            name: "panic_storm",
            description: "40% of syntheses panic mid-flight",
            spec: Some(
                FaultSpec::default()
                    .with_rate(FaultKind::SynthPanic, 0.40)
                    .with_seed(11),
            ),
            max_retries: 3,
            floor: 0.85,
            ..base.clone()
        },
        Schedule {
            name: "worker_chaos",
            description: "worker threads die and jobs panic inside the pool",
            spec: Some(
                FaultSpec::default()
                    .with_rate(FaultKind::WorkerDeath, 0.05)
                    .with_rate(FaultKind::WorkerPanic, 0.02)
                    .with_seed(13),
            ),
            pool_hook: true,
            // Pin the worker count so synthesis fans out across the pool
            // even on single-core hosts — otherwise the schedule is vacuous.
            workers: Some(4),
            max_retries: 3,
            floor: 0.85,
            ..base.clone()
        },
        Schedule {
            name: "deadline_pressure",
            description: "tight per-request deadlines over slow disk I/O",
            // The injected 30ms store latency keeps each synthesis in
            // flight well past the 25ms deadline, so coalesced waiters
            // reliably time out regardless of how fast the host compiles.
            spec: Some(FaultSpec {
                io_delay: Duration::from_millis(30),
                ..FaultSpec::default()
            }),
            deadline: Some(Duration::from_millis(25)),
            clients: 6,
            floor: 0.35,
            ..base.clone()
        },
        Schedule {
            name: "overload",
            description: "one synthesis slot, queue of two, eight clients",
            max_concurrent: 1,
            queue_capacity: 2,
            clients: 8,
            floor: 0.25,
            ..base.clone()
        },
        Schedule {
            name: "cancellation_storm",
            description: "stalled searches under deadlines, a watchdog and a mid-burst shutdown",
            // Search-row stalls slow syntheses into the deadline/watchdog
            // window; cancel races delay cancellation polls to stress the
            // first-cancel-wins path.
            spec: Some(
                FaultSpec {
                    synth_stall: Duration::from_millis(5),
                    ..FaultSpec::default()
                }
                .with_rate(FaultKind::SynthStall, 0.10)
                .with_rate(FaultKind::CancelRace, 0.10)
                .with_seed(17),
            ),
            synth_hook: true,
            max_concurrent: 2,
            queue_capacity: 16,
            deadline: Some(Duration::from_millis(150)),
            watchdog: Some(Duration::from_millis(80)),
            shutdown_mid_burst: true,
            max_retries: 1,
            clients: 6,
            floor: 0.20,
            ..base
        },
    ]
}

/// The serving trace: the per-decode-step kernel programs of every Fig. 13
/// model × batch-size configuration.
pub fn default_trace() -> Vec<Program> {
    let models = [
        ModelConfig::deepseek_r1_awq(),
        ModelConfig::jamba_mini(),
        ModelConfig::qwen3_32b(),
        ModelConfig::llama3_70b_awq(),
        ModelConfig::mixtral_8x7b(),
    ];
    let mut trace = Vec::new();
    for model in &models {
        for batch in [1usize, 8] {
            trace.extend(decode_step_programs(model, batch, 2048));
        }
    }
    trace
}

/// Everything measured while replaying one schedule.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// Schedule name.
    pub name: String,
    /// Rendered fault spec (`none` when fault-free).
    pub spec: String,
    /// Configured availability floor.
    pub floor: f64,
    /// Client-observed request outcomes.
    pub requests: u64,
    /// Requests that returned an artifact.
    pub ok: u64,
    /// Requests that returned a typed error.
    pub failed: u64,
    /// … of which `Overloaded`.
    pub overloaded: u64,
    /// … of which `DeadlineExceeded`.
    pub deadline_expired: u64,
    /// … of which `Panicked`.
    pub panicked: u64,
    /// … of which `Cancelled` (shutdown drains, mostly).
    pub cancelled: u64,
    /// … of which `SynthesisTimeout` (watchdog trips).
    pub watchdog_timeouts: u64,
    /// … of which any other error (must stay zero).
    pub other_errors: u64,
    /// ok / requests.
    pub availability: f64,
    /// Artifacts that differed from the fault-free reference (must be 0).
    pub mismatches: u64,
    /// Service counters after the replay.
    pub shed: u64,
    /// Requests whose deadline expired (service view).
    pub deadline_exceeded: u64,
    /// Transparent retries of transient failures.
    pub retries: u64,
    /// Syntheses that panicked (injected).
    pub synth_panics: u64,
    /// Requests that joined another request's synthesis.
    pub coalesced: u64,
    /// Synthesis attempts claimed.
    pub syntheses: u64,
    /// High-water mark of the admission queue.
    pub max_queue_depth: u64,
    /// In-flight syntheses aborted by cooperative cancellation (service
    /// view, both passes).
    pub synth_cancelled: u64,
    /// Watchdog trips (service view, both passes).
    pub watchdog_trips: u64,
    /// Requests drained with a typed shutdown cancellation.
    pub shutdown_drained: u64,
    /// Worker-pool items skipped because their job was cancelled.
    pub pool_cancelled: u64,
    /// 99th-percentile cancel-to-worker-free latency (ms); 0 when nothing
    /// was cancelled. Checked against [`CANCEL_FREE_P99_LIMIT`].
    pub cancel_free_p99_ms: f64,
    /// Cache: corrupt files moved aside.
    pub quarantined: u64,
    /// Cache: failed disk writes.
    pub write_failures: u64,
    /// Cache: circuit-breaker trips into memory-only mode.
    pub breaker_trips: u64,
    /// Cache: probe-driven breaker recoveries.
    pub breaker_recoveries: u64,
    /// Cache: artifacts rejected for version drift.
    pub stale_version: u64,
    /// Faults the injector actually fired.
    pub injected_faults: u64,
    /// Worker-pool jobs submitted during the replay.
    pub pool_jobs: u64,
    /// Worker-pool items executed during the replay.
    pub pool_items: u64,
    /// Worker threads that died during the replay.
    pub pool_deaths: u64,
    /// Worker threads revived during the replay.
    pub pool_respawns: u64,
    /// Median client-observed request latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile client-observed request latency (ms).
    pub p99_ms: f64,
    /// Whole-schedule wall time (s).
    pub wall_s: f64,
}

#[derive(Default)]
struct Tally {
    ok: u64,
    overloaded: u64,
    deadline_expired: u64,
    panicked: u64,
    cancelled: u64,
    watchdog_timeouts: u64,
    other: u64,
    unexpected: Vec<String>,
    latencies_ms: Vec<f64>,
    artifacts: HashMap<u64, Arc<KernelArtifact>>,
}

fn unique_temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "hexcute-robustness-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Silences the backtraces of *injected* panics (their payloads start with
/// `injected:`) so a chaos run's output stays readable; every other panic
/// still reaches the previous hook. Installed once per process.
fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.starts_with("injected"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.starts_with("injected"))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Replays `trace` under one schedule and verifies its invariants.
///
/// Returns the measurements plus the served artifacts by fingerprint (the
/// fault-free run's map becomes the bit-identity `reference` for the
/// others). Violations are recorded through [`crate::checks`]; a replay
/// exceeding [`SCHEDULE_WALL_LIMIT`] exits the process immediately.
pub fn run_schedule(
    schedule: &Schedule,
    trace: &[Program],
    reference: Option<&HashMap<u64, Arc<KernelArtifact>>>,
) -> (ScheduleResult, HashMap<u64, Arc<KernelArtifact>>) {
    silence_injected_panics();
    let dir = unique_temp_dir(schedule.name);
    let injector = schedule.spec.clone().map(FaultInjector::new);
    if schedule.pool_hook {
        if let Some(inj) = &injector {
            faults::install_pool_hook(inj);
        }
    }
    if schedule.synth_hook {
        if let Some(inj) = &injector {
            faults::install_synth_hook(inj);
        }
    }
    let pool_before = pool_stats();
    let started = Instant::now();

    let service_config = ServiceConfig {
        max_concurrent: schedule.max_concurrent,
        queue_capacity: schedule.queue_capacity,
        deadline: schedule.deadline,
        watchdog: schedule.watchdog,
        max_retries: schedule.max_retries,
        retry_backoff: Duration::from_millis(1),
        seed: 42,
        faults: injector.clone(),
        ..ServiceConfig::default()
    };
    let compiler_options = CompilerOptions {
        synthesis: SynthesisOptions {
            parallel_workers: schedule.workers,
            ..SynthesisOptions::default()
        },
        ..CompilerOptions::new()
    };
    let cache_config = KernelCacheConfig {
        dir: Some(dir.clone()),
        ..KernelCacheConfig::default()
    };
    // Pass 1 (cold) runs against `service`; pass 2 runs against a *fresh*
    // service over the same directory and the same injector — a process
    // restart, so the warm pass actually reads the disk tier under faults
    // instead of hitting the first service's memory front.
    let service = Arc::new(CompileService::with_service_config(
        GpuArch::h100(),
        compiler_options.clone(),
        cache_config.clone(),
        service_config.clone(),
    ));
    let restarted = Arc::new(CompileService::with_service_config(
        GpuArch::h100(),
        compiler_options,
        cache_config,
        service_config,
    ));

    // The replay runs on its own threads so this thread can enforce the
    // wall-clock deadlock bound from outside.
    let (tx, rx) = std::sync::mpsc::channel();
    let runner = {
        let passes = [Arc::clone(&service), Arc::clone(&restarted)];
        let trace: Arc<Vec<Program>> = Arc::new(trace.to_vec());
        let clients = schedule.clients;
        let verify_coverage = schedule.verify_decode_coverage;
        let shutdown_mid_burst = schedule.shutdown_mid_burst;
        std::thread::spawn(move || {
            let tally = Arc::new(Mutex::new(Tally::default()));
            let barrier = Arc::new(Barrier::new(clients));
            // Mid-burst shutdown: once half of the cold pass's requests
            // have arrived, shut the cold service down while clients are
            // still bursting against it. (Every client issues the full
            // trace in pass 1, so the threshold is always reached.)
            let shutdown_watcher = shutdown_mid_burst.then(|| {
                let cold = Arc::clone(&passes[0]);
                let threshold = (clients * trace.len()) as u64 / 2;
                std::thread::spawn(move || {
                    while cold.stats().requests < threshold.max(1) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    cold.shutdown();
                })
            });
            let workers: Vec<_> = (0..clients)
                .map(|_| {
                    let passes = [Arc::clone(&passes[0]), Arc::clone(&passes[1])];
                    let trace = Arc::clone(&trace);
                    let tally = Arc::clone(&tally);
                    let barrier = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        // Two passes: cold (synthesis under faults), then
                        // warm after a restart (disk reads under faults).
                        for service in &passes {
                            barrier.wait();
                            for program in trace.iter() {
                                let t0 = Instant::now();
                                let outcome = service.compile(program);
                                let ms = t0.elapsed().as_secs_f64() * 1e3;
                                let mut t = tally.lock().unwrap();
                                t.latencies_ms.push(ms);
                                match outcome {
                                    Ok(resp) => {
                                        t.ok += 1;
                                        t.artifacts
                                            .entry(resp.artifact.fingerprint)
                                            .or_insert_with(|| Arc::clone(&resp.artifact));
                                    }
                                    Err(CompileError::Overloaded { .. }) => t.overloaded += 1,
                                    Err(CompileError::DeadlineExceeded { .. }) => {
                                        t.deadline_expired += 1
                                    }
                                    Err(CompileError::Panicked(_)) => t.panicked += 1,
                                    Err(CompileError::Cancelled { .. }) => t.cancelled += 1,
                                    Err(CompileError::SynthesisTimeout { .. }) => {
                                        t.watchdog_timeouts += 1
                                    }
                                    Err(e) => {
                                        t.other += 1;
                                        t.unexpected.push(e.to_string());
                                    }
                                }
                            }
                        }
                    })
                })
                .collect();
            for w in workers {
                let _ = w.join();
            }
            if let Some(watcher) = shutdown_watcher {
                let _ = watcher.join();
            }
            if verify_coverage {
                // The trace must cover the whole decode step: serving every
                // model configuration again may not synthesize anything new.
                let warm = &passes[1];
                let syntheses_after_replay = warm.stats().syntheses;
                for model in [
                    ModelConfig::deepseek_r1_awq(),
                    ModelConfig::jamba_mini(),
                    ModelConfig::qwen3_32b(),
                    ModelConfig::llama3_70b_awq(),
                    ModelConfig::mixtral_8x7b(),
                ] {
                    for batch in [1usize, 8] {
                        decode_latency_ms_with(&model, KernelBackend::Hexcute, batch, 2048, warm);
                    }
                }
                checks::check(
                    warm.stats().syntheses == syntheses_after_replay,
                    "the replay trace must cover every decode-step kernel",
                );
            }
            let tally = Arc::try_unwrap(tally)
                .map(|m| m.into_inner().unwrap())
                .unwrap_or_else(|_| panic!("tally still shared"));
            tx.send(tally).ok();
        })
    };

    let tally = match rx.recv_timeout(SCHEDULE_WALL_LIMIT) {
        Ok(tally) => {
            let _ = runner.join();
            tally
        }
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            checks::check(
                false,
                &format!(
                    "schedule {} exceeded its {}s wall-clock bound — deadlock",
                    schedule.name,
                    SCHEDULE_WALL_LIMIT.as_secs()
                ),
            );
            checks::exit_if_failed();
            unreachable!("exit_if_failed returns only when no check failed");
        }
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            checks::check(
                false,
                &format!("schedule {}: the replay runner died", schedule.name),
            );
            checks::exit_if_failed();
            unreachable!("exit_if_failed returns only when no check failed");
        }
    };
    if schedule.synth_hook {
        faults::clear_synth_hook();
    }
    if schedule.pool_hook {
        faults::clear_pool_hook();
        // Respawn bookkeeping runs on the replacement worker's own thread;
        // give stragglers a moment before snapshotting the pool counters.
        let settle = Instant::now();
        while settle.elapsed() < Duration::from_secs(2) {
            let s = pool_stats();
            if s.respawns >= s.deaths {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let wall_s = started.elapsed().as_secs_f64();

    // Bit-identity against the fault-free reference.
    let mut mismatches = 0u64;
    if let Some(reference) = reference {
        for (fingerprint, artifact) in &tally.artifacts {
            match reference.get(fingerprint) {
                Some(r) if **r == **artifact => {}
                _ => mismatches += 1,
            }
        }
    }

    // Both passes count: the cold service and the restarted one.
    let cold = service.stats();
    let warm = restarted.stats();
    let pool_after = pool_stats();
    let mut cancel_free: Vec<Duration> = service.cancel_to_free_latencies();
    cancel_free.extend(restarted.cancel_to_free_latencies());
    let mut cancel_free_ms: Vec<f64> = cancel_free.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    cancel_free_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let failed = tally.overloaded
        + tally.deadline_expired
        + tally.panicked
        + tally.cancelled
        + tally.watchdog_timeouts
        + tally.other;
    let requests = tally.ok + failed;
    let availability = if requests == 0 {
        0.0
    } else {
        tally.ok as f64 / requests as f64
    };
    let mut sorted = tally.latencies_ms.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let result = ScheduleResult {
        name: schedule.name.to_string(),
        spec: schedule
            .spec
            .as_ref()
            .map(|s| s.to_string())
            .unwrap_or_else(|| "none".to_string()),
        floor: schedule.floor,
        requests,
        ok: tally.ok,
        failed,
        overloaded: tally.overloaded,
        deadline_expired: tally.deadline_expired,
        panicked: tally.panicked,
        cancelled: tally.cancelled,
        watchdog_timeouts: tally.watchdog_timeouts,
        other_errors: tally.other,
        availability,
        mismatches,
        shed: cold.shed + warm.shed,
        deadline_exceeded: cold.deadline_exceeded + warm.deadline_exceeded,
        retries: cold.retries + warm.retries,
        synth_panics: cold.synth_panics + warm.synth_panics,
        coalesced: cold.coalesced + warm.coalesced,
        syntheses: cold.syntheses + warm.syntheses,
        max_queue_depth: cold.max_queue_depth.max(warm.max_queue_depth),
        synth_cancelled: cold.cancelled + warm.cancelled,
        watchdog_trips: cold.watchdog_trips + warm.watchdog_trips,
        shutdown_drained: cold.shutdown_drained + warm.shutdown_drained,
        pool_cancelled: pool_after.cancelled - pool_before.cancelled,
        cancel_free_p99_ms: percentile(&cancel_free_ms, 0.99),
        quarantined: cold.cache.quarantined + warm.cache.quarantined,
        write_failures: cold.cache.write_failures + warm.cache.write_failures,
        breaker_trips: cold.cache.breaker_trips + warm.cache.breaker_trips,
        breaker_recoveries: cold.cache.breaker_recoveries + warm.cache.breaker_recoveries,
        stale_version: cold.cache.stale_version + warm.cache.stale_version,
        injected_faults: injector.as_ref().map(|i| i.injected_total()).unwrap_or(0),
        pool_jobs: pool_after.jobs - pool_before.jobs,
        pool_items: pool_after.items - pool_before.items,
        pool_deaths: pool_after.deaths - pool_before.deaths,
        pool_respawns: pool_after.respawns - pool_before.respawns,
        p50_ms: percentile(&sorted, 0.50),
        p99_ms: percentile(&sorted, 0.99),
        wall_s,
    };

    // The schedule's invariants.
    checks::check(
        result.availability >= result.floor,
        &format!(
            "{}: availability {:.3} below floor {:.2}",
            result.name, result.availability, result.floor
        ),
    );
    checks::check(
        result.mismatches == 0,
        &format!(
            "{}: {} artifacts diverged from the fault-free reference",
            result.name, result.mismatches
        ),
    );
    checks::check(
        result.other_errors == 0,
        &format!(
            "{}: untyped failures: {:?}",
            result.name,
            tally.unexpected.first()
        ),
    );
    // Without injected faults *or* admission pressure (the overload
    // schedule sheds by design), nothing may fail.
    if schedule.spec.is_none() && schedule.max_concurrent == 0 {
        checks::check(
            result.failed == 0,
            &format!("{}: failures without any injected fault", result.name),
        );
    }
    if schedule.pool_hook {
        checks::check(
            result.pool_deaths == result.pool_respawns,
            &format!(
                "{}: {} worker deaths but only {} respawns",
                result.name, result.pool_deaths, result.pool_respawns
            ),
        );
    }
    // Cancellation invariants: every cancelled synthesis must have freed
    // its admission slot (no leaked slots once all clients returned), and
    // promptly — the p99 cancel-to-worker-free latency stays within the
    // cancellation-poll bound.
    checks::check(
        cold.queue_depth == 0 && warm.queue_depth == 0,
        &format!(
            "{}: leaked admission slots (queue depths {} / {})",
            result.name, cold.queue_depth, warm.queue_depth
        ),
    );
    if !cancel_free_ms.is_empty() {
        checks::check(
            result.cancel_free_p99_ms <= CANCEL_FREE_P99_LIMIT.as_secs_f64() * 1e3,
            &format!(
                "{}: p99 cancel-to-worker-free latency {:.1}ms exceeds {}ms",
                result.name,
                result.cancel_free_p99_ms,
                CANCEL_FREE_P99_LIMIT.as_millis()
            ),
        );
    }
    if schedule.shutdown_mid_burst {
        checks::check(
            result.shutdown_drained > 0,
            &format!(
                "{}: a mid-burst shutdown must drain at least one request",
                result.name
            ),
        );
    }

    std::fs::remove_dir_all(&dir).ok();
    (result, tally.artifacts)
}

/// Replays the default trace under every schedule, fault-free first (its
/// artifacts become the bit-identity reference), and returns all results
/// plus `(trace kernels, distinct fingerprints)`.
pub fn run_all() -> (Vec<ScheduleResult>, (usize, usize)) {
    let trace = default_trace();
    let mut results = Vec::new();
    let mut reference: Option<HashMap<u64, Arc<KernelArtifact>>> = None;
    for schedule in schedules() {
        let (result, artifacts) = run_schedule(&schedule, &trace, reference.as_ref());
        results.push(result);
        if reference.is_none() {
            checks::check(
                !artifacts.is_empty(),
                "the fault-free replay must produce reference artifacts",
            );
            reference = Some(artifacts);
        }
    }
    let distinct = reference.map(|r| r.len()).unwrap_or(0);
    (results, (trace.len(), distinct))
}

/// Renders the results as the `BENCH_pr8.json` document.
pub fn to_json(results: &[ScheduleResult], trace_kernels: usize, distinct: usize) -> String {
    let mut out = format!(
        "{{\n  \"benchmark\": \"fault-tolerant compile serving under chaos schedules\",\n  \
         \"meta\": {{\n    \"threads\": {},\n    \"host_parallelism\": {},\n    \
         \"os\": \"{}\",\n    \"arch\": \"{}\"\n  }},\n  \"trace\": {{\n    \
         \"kernels_per_pass\": {trace_kernels},\n    \"distinct_fingerprints\": {distinct},\n    \
         \"passes\": 2\n  }},\n  \"schedules\": {{\n",
        hexcute_parallel::worker_count(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        std::env::consts::OS,
        std::env::consts::ARCH,
    );
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\n      \"spec\": \"{}\",\n      \"availability\": {:.4},\n      \
             \"floor\": {:.2},\n      \"requests\": {},\n      \"ok\": {},\n      \
             \"failed\": {},\n      \"overloaded\": {},\n      \"deadline_expired\": {},\n      \
             \"panicked\": {},\n      \"cancelled\": {},\n      \"watchdog_timeouts\": {},\n      \
             \"mismatches\": {},\n      \"shed\": {},\n      \
             \"retries\": {},\n      \"synth_panics\": {},\n      \"coalesced\": {},\n      \
             \"syntheses\": {},\n      \"max_queue_depth\": {},\n      \
             \"synth_cancelled\": {},\n      \"watchdog_trips\": {},\n      \
             \"shutdown_drained\": {},\n      \"pool_cancelled\": {},\n      \
             \"cancel_free_p99_ms\": {:.3},\n      \"quarantined\": {},\n      \
             \"write_failures\": {},\n      \"breaker_trips\": {},\n      \
             \"breaker_recoveries\": {},\n      \"stale_version\": {},\n      \
             \"injected_faults\": {},\n      \"pool_jobs\": {},\n      \"pool_items\": {},\n      \
             \"pool_deaths\": {},\n      \"pool_respawns\": {},\n      \"p50_ms\": {:.3},\n      \
             \"p99_ms\": {:.3},\n      \"wall_s\": {:.2}\n    }}{}\n",
            r.name,
            r.spec,
            r.availability,
            r.floor,
            r.requests,
            r.ok,
            r.failed,
            r.overloaded,
            r.deadline_expired,
            r.panicked,
            r.cancelled,
            r.watchdog_timeouts,
            r.mismatches,
            r.shed,
            r.retries,
            r.synth_panics,
            r.coalesced,
            r.syntheses,
            r.max_queue_depth,
            r.synth_cancelled,
            r.watchdog_trips,
            r.shutdown_drained,
            r.pool_cancelled,
            r.cancel_free_p99_ms,
            r.quarantined,
            r.write_failures,
            r.breaker_trips,
            r.breaker_recoveries,
            r.stale_version,
            r.injected_faults,
            r.pool_jobs,
            r.pool_items,
            r.pool_deaths,
            r.pool_respawns,
            r.p50_ms,
            r.p99_ms,
            r.wall_s,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hexcute_kernels::gemm::{fp16_gemm, GemmConfig, GemmShape};

    fn tiny_trace() -> Vec<Program> {
        vec![
            fp16_gemm(GemmShape::new(128, 128, 64), GemmConfig::default()).unwrap(),
            fp16_gemm(GemmShape::new(128, 128, 128), GemmConfig::default()).unwrap(),
        ]
    }

    #[test]
    fn disk_chaos_replay_is_fully_available_and_bit_identical() {
        let all = schedules();
        let trace = tiny_trace();
        let reference_schedule = Schedule {
            clients: 2,
            // The tiny trace deliberately doesn't cover the decode step.
            verify_decode_coverage: false,
            ..all[0].clone()
        };
        let failures_before = checks::failures();
        let (reference_result, reference) = run_schedule(&reference_schedule, &trace, None);
        assert_eq!(reference_result.availability, 1.0);
        assert_eq!(reference.len(), 2);

        let chaos = Schedule {
            clients: 2,
            ..all.iter().find(|s| s.name == "disk_chaos").unwrap().clone()
        };
        let (result, _) = run_schedule(&chaos, &trace, Some(&reference));
        assert_eq!(result.availability, 1.0, "disk faults must be transparent");
        assert_eq!(result.mismatches, 0);
        assert!(
            result.injected_faults > 0,
            "the schedule must actually inject"
        );
        assert_eq!(
            checks::failures(),
            failures_before,
            "no harness invariant may fail"
        );
    }

    #[test]
    fn cancellation_storm_replay_stays_typed_and_leak_free() {
        let all = schedules();
        let trace = tiny_trace();
        let storm = Schedule {
            clients: 2,
            // Debug-build syntheses are slow enough that the watchdog and the
            // deadline may cancel everything; this test is about typed errors
            // and slot hygiene, not throughput, so drop the floor.
            floor: 0.0,
            verify_decode_coverage: false,
            ..all
                .iter()
                .find(|s| s.name == "cancellation_storm")
                .unwrap()
                .clone()
        };
        let failures_before = checks::failures();
        let (result, _) = run_schedule(&storm, &trace, None);
        assert_eq!(
            result.other_errors, 0,
            "every failure must be a typed cancellation-ladder error"
        );
        assert!(
            result.shutdown_drained > 0,
            "the mid-burst shutdown must drain at least one request"
        );
        assert_eq!(
            checks::failures(),
            failures_before,
            "no harness invariant may fail (leaked slots, unbounded cancel-to-free)"
        );
    }

    #[test]
    fn json_report_includes_every_schedule_field() {
        let result = ScheduleResult {
            name: "fault_free".into(),
            spec: "none".into(),
            floor: 1.0,
            requests: 8,
            ok: 8,
            failed: 0,
            overloaded: 0,
            deadline_expired: 0,
            panicked: 0,
            cancelled: 0,
            watchdog_timeouts: 0,
            other_errors: 0,
            availability: 1.0,
            mismatches: 0,
            shed: 0,
            deadline_exceeded: 0,
            retries: 0,
            synth_panics: 0,
            coalesced: 3,
            syntheses: 2,
            max_queue_depth: 1,
            synth_cancelled: 0,
            watchdog_trips: 0,
            shutdown_drained: 0,
            pool_cancelled: 0,
            cancel_free_p99_ms: 0.0,
            quarantined: 0,
            write_failures: 0,
            breaker_trips: 0,
            breaker_recoveries: 0,
            stale_version: 0,
            injected_faults: 0,
            pool_jobs: 2,
            pool_items: 10,
            pool_deaths: 0,
            pool_respawns: 0,
            p50_ms: 1.5,
            p99_ms: 20.0,
            wall_s: 0.5,
        };
        let json = to_json(&[result], 2, 2);
        for key in [
            "\"availability\"",
            "\"floor\"",
            "\"shed\"",
            "\"max_queue_depth\"",
            "\"quarantined\"",
            "\"breaker_trips\"",
            "\"pool_respawns\"",
            "\"p99_ms\"",
            "\"distinct_fingerprints\"",
            "\"cancelled\"",
            "\"watchdog_trips\"",
            "\"shutdown_drained\"",
            "\"pool_cancelled\"",
            "\"cancel_free_p99_ms\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
