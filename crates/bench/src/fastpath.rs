//! Before/after measurements of the flat-layout fast path.
//!
//! Every benchmark here runs twice in one process: once with the fast path
//! disabled (`HEXCUTE_DISABLE_FAST_PATH`-equivalent — the recursive
//! reference algebra, the element-by-element simulator and the serial
//! candidate search, i.e. the pre-change behaviour) and once with it
//! enabled (flat memoized algebra, table-driven simulation, parallel
//! search). The results feed `BENCH_pr1.json` via [`write_json`] and the
//! `repro_fastpath` binary.

use std::collections::HashMap;
use std::time::Instant;

use hexcute_arch::{DType, GpuArch};
use hexcute_core::{Compiler, CompilerOptions};
use hexcute_ir::{KernelBuilder, Program};
use hexcute_kernels::attention::{mha_forward, AttentionConfig, AttentionShape};
use hexcute_kernels::gemm::{fp16_gemm, GemmConfig, GemmShape};
use hexcute_kernels::moe::{mixed_type_moe, MoeConfig, MoeDataflow, MoeShape};
use hexcute_layout::{ituple, set_fast_path, Layout, RepeatMode, TvLayout};
use hexcute_sim::{FunctionalSim, SimTableCache};
use hexcute_synthesis::{SynthesisOptions, Synthesizer};

use crate::report::Report;

/// One before/after measurement.
#[derive(Debug, Clone)]
pub struct FastPathEntry {
    /// Benchmark group (`layout_algebra`, `simulation`, `synthesis`).
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Median nanoseconds per iteration with the fast path disabled
    /// (the pre-change reference behaviour).
    pub reference_ns: f64,
    /// Median nanoseconds per iteration with the fast path enabled.
    pub fast_ns: f64,
}

impl FastPathEntry {
    /// Reference time over fast time.
    pub fn speedup(&self) -> f64 {
        if self.fast_ns > 0.0 {
            self.reference_ns / self.fast_ns
        } else {
            0.0
        }
    }
}

/// Median nanoseconds per iteration of `f`, measured over `samples` samples
/// sized to roughly `sample_ms` milliseconds each.
pub fn measure_ns<F: FnMut()>(mut f: F, samples: usize, sample_ms: f64) -> f64 {
    // Warm-up and per-iteration estimate.
    let start = Instant::now();
    let mut warm = 0u64;
    while start.elapsed().as_secs_f64() < 0.05 || warm < 3 {
        f();
        warm += 1;
        if warm >= 1_000_000 {
            break;
        }
    }
    let per_iter = start.elapsed().as_secs_f64() / warm as f64;
    let iters = ((sample_ms / 1e3 / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
    let mut medians = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        medians.push(t.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }
    medians.sort_by(f64::total_cmp);
    medians[medians.len() / 2]
}

/// Measures `f` with the fast path disabled, then enabled.
fn before_after<F: FnMut()>(group: &str, name: &str, mut f: F) -> FastPathEntry {
    set_fast_path(false);
    let reference_ns = measure_ns(&mut f, 5, 20.0);
    set_fast_path(true);
    let fast_ns = measure_ns(&mut f, 5, 20.0);
    FastPathEntry {
        group: group.to_string(),
        name: name.to_string(),
        reference_ns,
        fast_ns,
    }
}

/// The layout-algebra group: the operations at the heart of constraint
/// construction and solving.
pub fn layout_algebra_entries() -> Vec<FastPathEntry> {
    let mma_a = Layout::new(ituple![(4, 8), (2, 2, 2)], ituple![(32, 1), (16, 8, 128)]).unwrap();
    let ldmatrix_q = Layout::new(ituple![(4, 8), (2, 4)], ituple![(64, 1), (32, 8)]).unwrap();
    let tile = Layout::column_major(&[128, 64]);
    let complement_arg = Layout::from_flat(&[8, 4], &[1, 32]);
    let coalesce_arg = Layout::from_flat(&[2, 4, 8, 2, 4], &[1, 2, 8, 64, 128]);
    let divide_base = Layout::identity(4096);
    let divide_tiler = Layout::from_mode(16, 8);
    let atom = TvLayout::new(
        Layout::from_flat(&[4, 8], &[32, 1]),
        Layout::from_flat(&[2, 2], &[16, 8]),
        vec![16, 8],
    )
    .unwrap();

    vec![
        before_after("layout_algebra", "compose", || {
            std::hint::black_box(tile.compose(&mma_a).unwrap());
        }),
        before_after("layout_algebra", "right_inverse", || {
            std::hint::black_box(ldmatrix_q.right_inverse().unwrap());
        }),
        before_after("layout_algebra", "complement", || {
            std::hint::black_box(complement_arg.complement(8192).unwrap());
        }),
        before_after("layout_algebra", "coalesce", || {
            std::hint::black_box(coalesce_arg.coalesce());
        }),
        before_after("layout_algebra", "logical_divide", || {
            std::hint::black_box(divide_base.logical_divide(&divide_tiler).unwrap());
        }),
        before_after("layout_algebra", "map_sweep_1k", || {
            let mut acc = 0usize;
            for i in 0..1024 {
                acc += mma_a.map(i);
            }
            std::hint::black_box(acc);
        }),
        before_after("layout_algebra", "tv_expand_to_128x128", || {
            std::hint::black_box(
                atom.expand(
                    &[RepeatMode::along(2, 0), RepeatMode::along(2, 1)],
                    &[RepeatMode::along(4, 0), RepeatMode::along(8, 1)],
                )
                .unwrap(),
            );
        }),
    ]
}

fn copy_roundtrip_program() -> hexcute_ir::Program {
    let mut kb = KernelBuilder::new("bench_copy_roundtrip", 128);
    let src = kb.global_view("src", DType::F16, Layout::row_major(&[64, 64]), &[64, 64]);
    let dst = kb.global_view("dst", DType::F16, Layout::row_major(&[64, 64]), &[64, 64]);
    let stage = kb.shared_tensor("stage", DType::F16, &[64, 64]);
    let tile = kb.register_tensor("tile", DType::F16, &[64, 64]);
    kb.copy(src, stage);
    kb.copy(stage, tile);
    kb.copy(tile, dst);
    kb.build().unwrap()
}

fn small_gemm_program() -> hexcute_ir::Program {
    let (m, n, k) = (64usize, 64usize, 64usize);
    let mut kb = KernelBuilder::new("bench_gemm", 128);
    let ga = kb.global_view(
        "a",
        DType::F16,
        Layout::from_flat(&[m, k], &[k, 1]),
        &[m, k],
    );
    let gb = kb.global_view(
        "b",
        DType::F16,
        Layout::from_flat(&[n, k], &[k, 1]),
        &[n, k],
    );
    let gc = kb.global_view(
        "c",
        DType::F32,
        Layout::from_flat(&[m, n], &[n, 1]),
        &[m, n],
    );
    let sa = kb.shared_tensor("sa", DType::F16, &[m, k]);
    let sb = kb.shared_tensor("sb", DType::F16, &[n, k]);
    let ra = kb.register_tensor("ra", DType::F16, &[m, k]);
    let rb = kb.register_tensor("rb", DType::F16, &[n, k]);
    let rc = kb.register_tensor("rc", DType::F32, &[m, n]);
    kb.fill(rc, 0.0);
    kb.copy(ga, sa);
    kb.copy(gb, sb);
    kb.copy(sa, ra);
    kb.copy(sb, rb);
    kb.gemm(rc, ra, rb);
    kb.copy(rc, gc);
    kb.build().unwrap()
}

/// The simulation group: the functional simulator on data-movement and GEMM
/// kernels.
pub fn simulation_entries() -> Vec<FastPathEntry> {
    let arch = GpuArch::a100();
    set_fast_path(true);

    let copy_program = copy_roundtrip_program();
    let copy_candidate = Synthesizer::new(&copy_program, &arch, SynthesisOptions::default())
        .synthesize_preferred()
        .unwrap();
    let mut copy_inputs = HashMap::new();
    copy_inputs.insert("src".to_string(), vec![0.5f32; 64 * 64]);

    let gemm_program = small_gemm_program();
    let gemm_candidate = Synthesizer::new(&gemm_program, &arch, SynthesisOptions::default())
        .synthesize_preferred()
        .unwrap();
    let mut gemm_inputs = HashMap::new();
    gemm_inputs.insert("a".to_string(), vec![0.5f32; 64 * 64]);
    gemm_inputs.insert("b".to_string(), vec![0.25f32; 64 * 64]);

    vec![
        before_after("simulation", "functional_copy_roundtrip_64x64", || {
            let sim = FunctionalSim::new(&copy_program, &copy_candidate);
            std::hint::black_box(sim.run(&copy_inputs).unwrap());
        }),
        before_after("simulation", "functional_gemm_64x64x64", || {
            let sim = FunctionalSim::new(&gemm_program, &gemm_candidate);
            std::hint::black_box(sim.run(&gemm_inputs).unwrap());
        }),
    ]
}

/// The synthesis group: candidate enumeration plus shared-memory synthesis
/// and full cost-ranked compilation.
pub fn synthesis_entries() -> Vec<FastPathEntry> {
    let arch = GpuArch::a100();
    let gemm = fp16_gemm(GemmShape::new(4096, 4096, 4096), GemmConfig::default()).unwrap();

    vec![
        before_after("synthesis", "gemm_all_candidates", || {
            std::hint::black_box(
                Synthesizer::new(&gemm, &arch, SynthesisOptions::default())
                    .synthesize()
                    .unwrap(),
            );
        }),
        before_after("synthesis", "compile_gemm_uncached", || {
            let compiler = Compiler::with_options(arch.clone(), CompilerOptions::new());
            std::hint::black_box(compiler.compile(&gemm).unwrap());
        }),
    ]
}

/// Measures `f(false)` (incremental evaluation off — the PR 1 fast-path
/// behaviour, re-evaluating every candidate from scratch) against `f(true)`
/// (the shared-prefix incremental search). The flat-layout fast path stays
/// *enabled* for both sides: the baseline here is PR 1, not the recursive
/// reference.
fn incremental_before_after<F: FnMut(bool)>(name: &str, mut f: F) -> FastPathEntry {
    set_fast_path(true);
    let reference_ns = measure_ns(|| f(false), 5, 20.0);
    let fast_ns = measure_ns(|| f(true), 5, 20.0);
    FastPathEntry {
        group: "synthesis_incremental".to_string(),
        name: name.to_string(),
        reference_ns,
        fast_ns,
    }
}

/// The incremental prefix-shared search group (PR 2): end-to-end candidate
/// synthesis and cost-ranked compilation of the paper's kernel families,
/// with the incremental evaluation toggled via
/// [`SynthesisOptions::incremental`]. Feeds `BENCH_pr2.json`.
pub fn synthesis_incremental_entries() -> Vec<FastPathEntry> {
    let arch = GpuArch::a100();
    let gemm = fp16_gemm(GemmShape::new(4096, 4096, 4096), GemmConfig::default()).unwrap();
    let attention = mha_forward(
        AttentionShape::forward(8, 32, 2048, 128),
        AttentionConfig::default(),
    )
    .unwrap();
    let moe = mixed_type_moe(
        MoeShape::deepseek_r1(128),
        MoeConfig::default(),
        MoeDataflow::Efficient,
    )
    .unwrap();

    let options_with = |incremental: bool| SynthesisOptions {
        incremental,
        ..SynthesisOptions::default()
    };
    let synthesize_entry = |name: &str, program: &Program| {
        incremental_before_after(name, |incremental| {
            std::hint::black_box(
                Synthesizer::new(program, &arch, options_with(incremental))
                    .synthesize()
                    .unwrap(),
            );
        })
    };
    let compile_entry = |name: &str, program: &Program| {
        incremental_before_after(name, |incremental| {
            let compiler = Compiler::with_options(
                arch.clone(),
                CompilerOptions {
                    synthesis: options_with(incremental),
                    use_cost_model: true,
                },
            );
            std::hint::black_box(compiler.compile(program).unwrap());
        })
    };

    let mut entries = vec![
        synthesize_entry("gemm_synthesize_all_candidates", &gemm),
        synthesize_entry("attention_synthesize_all_candidates", &attention),
        synthesize_entry("moe_synthesize_all_candidates", &moe),
        compile_entry("gemm_compile_uncached", &gemm),
        compile_entry("attention_compile_uncached", &attention),
        compile_entry("moe_compile_uncached", &moe),
    ];

    // Functional simulation of every sibling candidate of one small GEMM:
    // the reference rebuilds each candidate's index tables; the incremental
    // side shares one fingerprint-keyed table cache across siblings.
    let sim_program = small_gemm_program();
    let sim_candidates = Synthesizer::new(&sim_program, &arch, SynthesisOptions::default())
        .synthesize()
        .unwrap();
    let mut sim_inputs = HashMap::new();
    sim_inputs.insert("a".to_string(), vec![0.5f32; 64 * 64]);
    sim_inputs.insert("b".to_string(), vec![0.25f32; 64 * 64]);
    entries.push(incremental_before_after(
        "functional_simulate_siblings",
        |incremental| {
            // A fresh cache per sweep: tables are shared across the sibling
            // candidates of one sweep, not across repeated measurements.
            let shared_cache = SimTableCache::new();
            for candidate in &sim_candidates {
                let sim = FunctionalSim::new(&sim_program, candidate);
                if incremental {
                    std::hint::black_box(sim.run_with_cache(&sim_inputs, &shared_cache).unwrap());
                } else {
                    std::hint::black_box(sim.run(&sim_inputs).unwrap());
                }
            }
        },
    ));
    entries
}

/// The serial-incremental options: the PR 2 behaviour (incremental walk, one
/// worker, no subtree split) — the baseline the parallel search is measured
/// against.
fn serial_incremental_options() -> SynthesisOptions {
    SynthesisOptions {
        incremental: true,
        parallel_subtree_depth: Some(0),
        parallel_workers: Some(1),
        ..SynthesisOptions::default()
    }
}

/// Options for the parallel subtree walk at an explicit worker count
/// (auto-tuned split depth).
fn parallel_options(workers: usize) -> SynthesisOptions {
    SynthesisOptions {
        incremental: true,
        parallel_subtree_depth: None,
        parallel_workers: Some(workers),
        ..SynthesisOptions::default()
    }
}

/// Worker counts for the scaling curve: 1, 2, 4 and the machine's
/// `HEXCUTE_THREADS`/auto count when that adds a new point.
pub fn scaling_worker_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 4];
    let n = hexcute_parallel::worker_count();
    if !counts.contains(&n) {
        counts.push(n);
    }
    counts.sort_unstable();
    counts
}

/// The parallel prefix-tree search group (PR 3): end-to-end candidate
/// synthesis and cost-ranked compilation of the paper's kernel families,
/// comparing the PR 2 serial-incremental walk against the parallel subtree
/// walk at 1/2/4/N workers. One group per worker count
/// (`synthesis_parallel_w{N}`), so each group's geomean is one point of the
/// scaling curve. Feeds `BENCH_pr3.json` via the `repro_parallel` binary.
pub fn synthesis_parallel_entries() -> Vec<FastPathEntry> {
    let arch = GpuArch::a100();
    let gemm = fp16_gemm(GemmShape::new(4096, 4096, 4096), GemmConfig::default()).unwrap();
    let attention = mha_forward(
        AttentionShape::forward(8, 32, 2048, 128),
        AttentionConfig::default(),
    )
    .unwrap();
    let moe = mixed_type_moe(
        MoeShape::deepseek_r1(128),
        MoeConfig::default(),
        MoeDataflow::Efficient,
    )
    .unwrap();
    let kernels: [(&str, &Program); 3] =
        [("gemm", &gemm), ("attention", &attention), ("moe", &moe)];
    set_fast_path(true);

    let synthesize_with = |program: &Program, options: SynthesisOptions| {
        std::hint::black_box(
            Synthesizer::new(program, &arch, options)
                .synthesize()
                .unwrap(),
        );
    };
    let compile_with = |program: &Program, options: SynthesisOptions| {
        let compiler = Compiler::with_options(
            arch.clone(),
            CompilerOptions {
                synthesis: options,
                use_cost_model: true,
            },
        );
        std::hint::black_box(compiler.compile(program).unwrap());
    };

    let mut entries = Vec::new();
    for (kernel, program) in kernels {
        // The serial baseline is measured once per kernel and shared by
        // every worker-count entry, so the curve has a common denominator.
        let serial_synthesize_ns = measure_ns(
            || synthesize_with(program, serial_incremental_options()),
            5,
            20.0,
        );
        let serial_compile_ns = measure_ns(
            || compile_with(program, serial_incremental_options()),
            5,
            20.0,
        );
        for &workers in &scaling_worker_counts() {
            let group = format!("synthesis_parallel_w{workers}");
            entries.push(FastPathEntry {
                group: group.clone(),
                name: format!("{kernel}_synthesize_all_candidates"),
                reference_ns: serial_synthesize_ns,
                fast_ns: measure_ns(
                    || synthesize_with(program, parallel_options(workers)),
                    5,
                    20.0,
                ),
            });
            entries.push(FastPathEntry {
                group,
                name: format!("{kernel}_compile_uncached"),
                reference_ns: serial_compile_ns,
                fast_ns: measure_ns(|| compile_with(program, parallel_options(workers)), 5, 20.0),
            });
        }
    }
    entries
}

/// Exercises the bounded shared caches once (sibling candidates of a small
/// GEMM scored and simulated twice through shared caches) and returns their
/// hit/miss/eviction counters: the simulator table cache, the cost model's
/// per-operation cache and its bounded whole-candidate cache. Printed by the
/// `repro_*` binaries.
pub fn shared_cache_stats() -> (
    hexcute_parallel::cache::CacheStats,
    hexcute_parallel::cache::CacheStats,
    hexcute_parallel::cache::CacheStats,
) {
    let arch = GpuArch::a100();
    set_fast_path(true);
    let program = small_gemm_program();
    let candidates = Synthesizer::new(&program, &arch, SynthesisOptions::default())
        .synthesize()
        .unwrap();
    let mut inputs = HashMap::new();
    inputs.insert("a".to_string(), vec![0.5f32; 64 * 64]);
    inputs.insert("b".to_string(), vec![0.25f32; 64 * 64]);

    let table_cache = SimTableCache::new();
    let model = hexcute_costmodel::CostModel::new(&arch);
    for _ in 0..2 {
        for candidate in &candidates {
            let sim = FunctionalSim::new(&program, candidate);
            std::hint::black_box(sim.run_with_cache(&inputs, &table_cache).unwrap());
            std::hint::black_box(model.estimate(&program, candidate));
        }
    }
    (
        table_cache.stats(),
        model.op_cache_stats(),
        model.candidate_cache_stats(),
    )
}

/// Exercises a (memory-only) kernel-artifact cache once — a small GEMM
/// compiled twice through [`hexcute_core::KernelCache`] — and returns its
/// counters. Printed by the `repro_*` binaries alongside
/// [`shared_cache_stats`].
pub fn artifact_cache_stats() -> hexcute_core::KernelCacheStats {
    let arch = GpuArch::a100();
    set_fast_path(true);
    let program = small_gemm_program();
    let cache = hexcute_core::KernelCache::new(hexcute_core::KernelCacheConfig::default());
    let compiler = Compiler::new(arch);
    for _ in 0..2 {
        std::hint::black_box(
            compiler
                .compile_with_cache(&program, &cache)
                .expect("small GEMM compiles"),
        );
    }
    cache.stats()
}

/// Runs every group (leaving the fast path enabled afterwards).
pub fn run_all() -> Vec<FastPathEntry> {
    let mut entries = layout_algebra_entries();
    entries.extend(simulation_entries());
    entries.extend(synthesis_entries());
    set_fast_path(true);
    entries
}

/// Geometric-mean speedup per group, in deterministic group order.
pub fn group_speedups(entries: &[FastPathEntry]) -> Vec<(String, f64)> {
    let mut order: Vec<String> = Vec::new();
    let mut by_group: HashMap<String, Vec<f64>> = HashMap::new();
    for e in entries {
        if !by_group.contains_key(&e.group) {
            order.push(e.group.clone());
        }
        by_group
            .entry(e.group.clone())
            .or_default()
            .push(e.speedup());
    }
    order
        .into_iter()
        .map(|g| {
            let v = &by_group[&g];
            (g, crate::geomean(v))
        })
        .collect()
}

/// Formats the entries as a human-readable report.
pub fn as_report(entries: &[FastPathEntry]) -> Report {
    let mut report = Report::new(
        "Flat-layout fast path: before/after",
        &["group", "benchmark", "reference", "fast", "speedup"],
    );
    for e in entries {
        report.push_row(vec![
            e.group.clone(),
            e.name.clone(),
            format_ns(e.reference_ns),
            format_ns(e.fast_ns),
            format!("{:.2}x", e.speedup()),
        ]);
    }
    for (group, speedup) in group_speedups(entries) {
        report.push_note(format!("{group}: geomean speedup {speedup:.2}x"));
    }
    report
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Serializes the entries (plus per-group geomeans) as a JSON document.
pub fn to_json(entries: &[FastPathEntry]) -> String {
    to_json_named("flat-layout fast path", entries)
}

/// [`to_json`] with an explicit top-level benchmark name. The document
/// carries a `meta` object recording the worker configuration and host the
/// numbers were measured on (`threads` is the effective
/// `HEXCUTE_THREADS`/auto count).
pub fn to_json_named(benchmark: &str, entries: &[FastPathEntry]) -> String {
    let mut out = format!(
        "{{\n  \"benchmark\": \"{benchmark}\",\n  \"meta\": {{\n    \
         \"threads\": {},\n    \"host_parallelism\": {},\n    \"os\": \"{}\",\n    \
         \"arch\": \"{}\"\n  }},\n  \"groups\": {{\n",
        hexcute_parallel::worker_count(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        std::env::consts::OS,
        std::env::consts::ARCH,
    );
    let groups = group_speedups(entries);
    for (gi, (group, speedup)) in groups.iter().enumerate() {
        out.push_str(&format!(
            "    \"{group}\": {{\n      \"geomean_speedup\": {speedup:.3},\n      \"entries\": [\n"
        ));
        let members: Vec<&FastPathEntry> = entries.iter().filter(|e| &e.group == group).collect();
        for (i, e) in members.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"name\": \"{}\", \"reference_ns\": {:.1}, \"fast_ns\": {:.1}, \"speedup\": {:.3}}}{}\n",
                e.name,
                e.reference_ns,
                e.fast_ns,
                e.speedup(),
                if i + 1 == members.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "      ]\n    }}{}\n",
            if gi + 1 == groups.len() { "" } else { "," }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Writes [`to_json`] to `path`, creating the parent directory if missing.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_json(path: &str, entries: &[FastPathEntry]) -> std::io::Result<()> {
    crate::write_output(path, &to_json(entries))
}

/// Writes [`to_json_named`] to `path`, creating the parent directory if
/// missing.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_json_named(
    path: &str,
    benchmark: &str,
    entries: &[FastPathEntry],
) -> std::io::Result<()> {
    crate::write_output(path, &to_json_named(benchmark, entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_ns_returns_positive_medians() {
        let ns = measure_ns(
            || {
                std::hint::black_box((0..100u64).sum::<u64>());
            },
            3,
            1.0,
        );
        assert!(ns > 0.0);
    }

    #[test]
    fn json_round_trip_contains_groups_and_speedups() {
        let entries = vec![
            FastPathEntry {
                group: "layout_algebra".into(),
                name: "compose".into(),
                reference_ns: 900.0,
                fast_ns: 100.0,
            },
            FastPathEntry {
                group: "simulation".into(),
                name: "gemm".into(),
                reference_ns: 5000.0,
                fast_ns: 1000.0,
            },
        ];
        let json = to_json(&entries);
        assert!(json.contains("\"layout_algebra\""));
        assert!(json.contains("\"geomean_speedup\": 9.000"));
        assert!(json.contains("\"geomean_speedup\": 5.000"));
        let report = as_report(&entries);
        assert!(report.to_string().contains("9.00x"));
        let speedups = group_speedups(&entries);
        assert_eq!(speedups.len(), 2);
        assert_eq!(speedups[0].0, "layout_algebra");
    }
}
