//! # hexcute-bench
//!
//! The reproduction harness: one function per table and figure of the
//! Hexcute paper's evaluation (Section VII), each returning a formatted
//! [`Report`] with the same rows/series the paper presents. The `repro_*`
//! binaries in `src/bin/` print them; `EXPERIMENTS.md` records the measured
//! numbers next to the paper's.

#![warn(missing_docs)]

pub mod report;

pub mod ablation;
pub mod checks;
pub mod compile_time;
pub mod cost_model;
pub mod end_to_end;
pub mod fastpath;
pub mod moe_bench;
pub mod per_shape;
pub mod robustness_bench;
pub mod scan_bench;
pub mod serving_bench;
pub mod table2;
pub mod tables34;
pub mod workloads_bench;

pub use report::Report;

use hexcute_arch::GpuArch;
use hexcute_core::{CompiledKernel, Compiler};
use hexcute_ir::Program;

/// Compiles a program with the default Hexcute pipeline and returns the
/// compiled kernel (panicking on failure, which is acceptable for a harness).
pub fn compile_hexcute(program: &Program, arch: &GpuArch) -> CompiledKernel {
    Compiler::new(arch.clone())
        .compile(program)
        .unwrap_or_else(|e| panic!("failed to compile {}: {e}", program.name))
}

/// Writes `contents` to `path`, creating the parent directory first when it
/// does not exist (so `repro_* -- out/nested/BENCH.json` works instead of
/// failing with `No such file or directory`).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_output(path: &str, contents: &str) -> std::io::Result<()> {
    let path = std::path::Path::new(path);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

/// Prints the hit/miss/eviction statistics of every shared cache the
/// synthesis pipeline maintains — the simulator index tables, the cost
/// model's per-operation and whole-candidate estimates, and the kernel
/// artifact cache — each exercised on a small GEMM. Every `repro_*` binary
/// calls this in its summary.
///
/// The exercise's cache-hit invariants are *verified*, not just printed:
/// the second pass must hit the simulator-table and per-op cost caches,
/// and the second compile of the unchanged program must be an
/// artifact-cache memory hit. A violation fails the binary through
/// [`checks::exit_if_failed`].
pub fn print_shared_cache_summary() {
    let (tables, op_costs, candidate_costs) = fastpath::shared_cache_stats();
    let artifacts = fastpath::artifact_cache_stats();
    println!("\nShared cache behaviour (synthetic small-GEMM exercise, two passes each):");
    println!("  simulator index tables:    {tables}");
    println!("  per-op cost estimates:     {op_costs}");
    println!("  whole-candidate estimates: {candidate_costs}");
    println!("  kernel artifacts:          {artifacts}");
    checks::check(
        tables.hits > 0,
        "the second simulation pass produced no index-table hits",
    );
    checks::check(
        op_costs.hits > 0,
        "the second scoring pass produced no per-op cost-cache hits",
    );
    checks::check(
        artifacts.memory.hits >= 1,
        "the second compile of an unchanged program was not an artifact-cache hit",
    );
}

/// Geometric mean of a slice of positive numbers.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn write_output_creates_missing_directories() {
        let dir = std::env::temp_dir().join(format!("hexcute-write-output-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("nested").join("BENCH_test.json");
        write_output(path.to_str().unwrap(), "{}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{}\n");
        // Bare filenames (no parent) keep working too.
        write_output("BENCH_write_output_test.tmp", "x").unwrap();
        std::fs::remove_file("BENCH_write_output_test.tmp").ok();
        std::fs::remove_dir_all(&dir).ok();
    }
}
