//! # hexcute-bench
//!
//! The reproduction harness: one function per table and figure of the
//! Hexcute paper's evaluation (Section VII), each returning a formatted
//! [`Report`] with the same rows/series the paper presents. The `repro_*`
//! binaries in `src/bin/` print them; `EXPERIMENTS.md` records the measured
//! numbers next to the paper's.

#![warn(missing_docs)]

pub mod report;

pub mod ablation;
pub mod compile_time;
pub mod cost_model;
pub mod end_to_end;
pub mod fastpath;
pub mod moe_bench;
pub mod per_shape;
pub mod scan_bench;
pub mod table2;
pub mod tables34;

pub use report::Report;

use hexcute_arch::GpuArch;
use hexcute_core::{CompiledKernel, Compiler};
use hexcute_ir::Program;

/// Compiles a program with the default Hexcute pipeline and returns the
/// compiled kernel (panicking on failure, which is acceptable for a harness).
pub fn compile_hexcute(program: &Program, arch: &GpuArch) -> CompiledKernel {
    Compiler::new(arch.clone())
        .compile(program)
        .unwrap_or_else(|e| panic!("failed to compile {}: {e}", program.name))
}

/// Geometric mean of a slice of positive numbers.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-9);
    }
}
