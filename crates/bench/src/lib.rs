//! # hexcute-bench
//!
//! The reproduction harness: one function per table and figure of the
//! Hexcute paper's evaluation (Section VII), each returning a formatted
//! [`Report`] with the same rows/series the paper presents. The `repro_*`
//! binaries in `src/bin/` print them; `EXPERIMENTS.md` records the measured
//! numbers next to the paper's.

#![warn(missing_docs)]

pub mod report;

pub mod ablation;
pub mod checks;
pub mod compile_time;
pub mod cost_model;
pub mod datalayout;
pub mod end_to_end;
pub mod fastpath;
pub mod moe_bench;
pub mod per_shape;
pub mod prune;
pub mod robustness_bench;
pub mod scan_bench;
pub mod serving_bench;
pub mod table2;
pub mod tables34;
pub mod traffic;
pub mod workloads_bench;

pub use report::Report;

use hexcute_arch::GpuArch;
use hexcute_core::{CompiledKernel, Compiler};
use hexcute_ir::Program;

/// Compiles a program with the default Hexcute pipeline and returns the
/// compiled kernel (panicking on failure, which is acceptable for a harness).
pub fn compile_hexcute(program: &Program, arch: &GpuArch) -> CompiledKernel {
    Compiler::new(arch.clone())
        .compile(program)
        .unwrap_or_else(|e| panic!("failed to compile {}: {e}", program.name))
}

/// Writes `contents` to `path`, creating the parent directory first when it
/// does not exist (so `repro_* -- out/nested/BENCH.json` works instead of
/// failing with `No such file or directory`).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_output(path: &str, contents: &str) -> std::io::Result<()> {
    let path = std::path::Path::new(path);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

/// Prints the hit/miss/eviction statistics of every memo tier the synthesis
/// pipeline maintains — the *shared* sharded maps (simulator index tables,
/// the cost model's per-operation and whole-candidate estimates, kernel
/// artifacts) and the *lossy* thread-local direct-mapped tables sitting in
/// front of them — each exercised on a small GEMM — plus the process-wide
/// worker-pool counters (jobs, items, cancelled subtrees, deaths/respawns).
/// Every `repro_*` binary calls this in its summary.
///
/// The exercise's cache-hit invariants are *verified*, not just printed:
/// the second pass must hit the simulator-table and per-op cost memos in
/// *some* tier (with the lossy tier enabled the thread-local table absorbs
/// the warm hits before the shared map is even consulted), the second
/// compile of the unchanged program must be an artifact-cache memory hit,
/// and — when the lossy tier is enabled — the warm repeat must produce a
/// nonzero lossy hit rate. A violation fails the binary through
/// [`checks::exit_if_failed`].
pub fn print_shared_cache_summary() {
    use hexcute_parallel::lossy::{self, LossyPurpose};

    let lossy_before: Vec<_> = lossy::LOSSY_PURPOSES
        .iter()
        .map(|&p| lossy::lossy_stats(p))
        .collect();
    let (tables, op_costs, candidate_costs) = fastpath::shared_cache_stats();
    let artifacts = fastpath::artifact_cache_stats();
    let lossy_delta = |purpose: LossyPurpose| {
        let before = lossy_before[purpose.index()];
        let after = lossy::lossy_stats(purpose);
        hexcute_parallel::cache::CacheStats {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            evictions: after.evictions - before.evictions,
            entries: after.entries,
        }
    };
    println!("\nShared cache behaviour (synthetic small-GEMM exercise, two passes each):");
    println!("  simulator index tables:    {tables}");
    println!("  per-op cost estimates:     {op_costs}");
    println!("  whole-candidate estimates: {candidate_costs}");
    println!("  kernel artifacts:          {artifacts}");
    println!(
        "Worker pool (process lifetime): {}",
        hexcute_parallel::pool_stats()
    );
    let lossy_on = lossy::lossy_memo_enabled();
    println!(
        "Lossy direct-mapped front tier ({}, this exercise only):",
        if lossy_on { "enabled" } else { "disabled" }
    );
    let mut lossy_exercise = hexcute_parallel::cache::CacheStats::default();
    for &purpose in &lossy::LOSSY_PURPOSES {
        let delta = lossy_delta(purpose);
        println!("  {:<26} {delta}", format!("{}:", purpose.label()));
        lossy_exercise = lossy_exercise.merged(&delta);
    }
    let lossy_sim = lossy_delta(LossyPurpose::SimCopy)
        .merged(&lossy_delta(LossyPurpose::SimTv))
        .merged(&lossy_delta(LossyPurpose::SimGather));
    let lossy_ops = lossy_delta(LossyPurpose::OpCost);
    checks::check(
        tables.hits + lossy_sim.hits > 0,
        "the second simulation pass produced no index-table hits in either tier",
    );
    checks::check(
        op_costs.hits + lossy_ops.hits > 0,
        "the second scoring pass produced no per-op cost-cache hits in either tier",
    );
    checks::check(
        artifacts.memory.hits >= 1,
        "the second compile of an unchanged program was not an artifact-cache hit",
    );
    if lossy_on {
        checks::check(
            lossy_exercise.hits > 0,
            "the warm repeat produced no lossy-memo hits with the lossy tier enabled",
        );
    }
}

/// Geometric mean of a slice of positive numbers.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn write_output_creates_missing_directories() {
        let dir = std::env::temp_dir().join(format!("hexcute-write-output-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("nested").join("BENCH_test.json");
        write_output(path.to_str().unwrap(), "{}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{}\n");
        // Bare filenames (no parent) keep working too.
        write_output("BENCH_write_output_test.tmp", "x").unwrap();
        std::fs::remove_file("BENCH_write_output_test.tmp").ok();
        std::fs::remove_dir_all(&dir).ok();
    }
}
