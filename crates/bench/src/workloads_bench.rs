//! The PR 5 workload-family benchmarks, feeding `BENCH_pr5.json` through the
//! `repro_workloads` binary:
//!
//! * **`quant_gemm_vs_marlin`** — the synthesized W4A16 quantized GEMM
//!   against the hand-written Marlin kernel's performance model, across
//!   decode/prefill token counts (`reference_ns` = Marlin, `fast_ns` =
//!   Hexcute, so the geomean is Marlin-over-Hexcute: ~1.0 means the
//!   synthesized kernel matches the hand-written one, as the paper reports
//!   for the MoE case at 0.89×–1.01×).
//! * **`grouped_vs_per_expert`** — the fused grouped GEMM (one launch for
//!   the whole per-expert problem list) against one-kernel-launch-per-expert
//!   dispatch (`reference_ns` = per-expert loop, `fast_ns` = fused).
//! * **`workload_compile_warm`** — cold synthesis vs. warm artifact-cache
//!   compile wall time for both new families through a [`CompileService`],
//!   with the warm artifacts *checked* bit-identical to the cold ones
//!   (via [`crate::checks`], so a violation fails the binary).

use std::path::Path;
use std::time::Instant;

use hexcute_arch::GpuArch;
use hexcute_baselines::{
    fused_grouped_gemm_latency_us, marlin_w4a16_latency_us, per_group_launch_latency_us,
};
use hexcute_core::{CompilerOptions, KernelCacheConfig};
use hexcute_e2e::CompileService;
use hexcute_kernels::grouped_gemm::{grouped_gemm, GroupedGemmConfig, GroupedGemmShape};
use hexcute_kernels::quant_gemm::{w4a16_gemm, QuantGemmConfig, QuantGemmShape};

use crate::checks;
use crate::compile_hexcute;
use crate::fastpath::FastPathEntry;

/// Token counts for the quantized-GEMM sweep: the decode regime (small
/// batches), where weight streaming dominates and W4A16 pays off.
pub fn quant_token_sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 16, 64]
    } else {
        vec![1, 8, 16, 32, 64, 128]
    }
}

/// Synthesized W4A16 GEMM vs. the Marlin performance model. Latencies are
/// the modelled kernel times in nanoseconds.
pub fn quant_gemm_entries(quick: bool) -> Vec<FastPathEntry> {
    let arch = GpuArch::h100();
    quant_token_sweep(quick)
        .into_iter()
        .map(|tokens| {
            let shape = QuantGemmShape::llama_70b_proj(tokens);
            let program = w4a16_gemm(shape, QuantGemmConfig::for_shape(&shape))
                .expect("W4A16 GEMM construction");
            let hexcute_us = compile_hexcute(&program, &arch).latency_us();
            let marlin_us = marlin_w4a16_latency_us(&shape, &arch);
            // Regime guard (fails the binary, not just the unit test): the
            // synthesized kernel must stay comparable to the hand-written
            // model in the decode regime.
            let ratio = marlin_us / hexcute_us;
            checks::check(
                ratio > 0.3 && ratio < 3.0,
                &format!(
                    "W4A16 GEMM at m={tokens}: Marlin/Hexcute ratio {ratio:.2} out of regime \
                     ({marlin_us:.1} us vs {hexcute_us:.1} us)"
                ),
            );
            FastPathEntry {
                group: "quant_gemm_vs_marlin".to_string(),
                name: format!("llama70b_proj_m{tokens}"),
                reference_ns: marlin_us * 1e3,
                fast_ns: hexcute_us * 1e3,
            }
        })
        .collect()
}

/// Expert-batch shapes for the grouped-GEMM sweep: (label, problem list).
fn grouped_sweep(quick: bool) -> Vec<(String, GroupedGemmShape)> {
    let mut shapes = vec![
        ("mixtral_b8".to_string(), GroupedGemmShape::mixtral(8)),
        ("mixtral_b64".to_string(), GroupedGemmShape::mixtral(64)),
        (
            "ragged_16experts".to_string(),
            GroupedGemmShape::from_token_counts(
                vec![1, 0, 7, 64, 3, 0, 16, 2, 1, 0, 0, 5, 9, 31, 4, 12],
                2048,
                4096,
            ),
        ),
    ];
    if !quick {
        shapes.push((
            "deepseek_256experts".to_string(),
            GroupedGemmShape::uniform(256, 2, 2048, 7168),
        ));
    }
    shapes
}

/// Fused grouped GEMM vs. one launch per expert.
pub fn grouped_gemm_entries(quick: bool) -> Vec<FastPathEntry> {
    let arch = GpuArch::h100();
    grouped_sweep(quick)
        .into_iter()
        .map(|(name, shape)| {
            let program = grouped_gemm(&shape, GroupedGemmConfig::default()).expect("grouped GEMM");
            let fused_us = compile_hexcute(&program, &arch).latency_us();
            let looped_us = per_group_launch_latency_us(&shape, &arch);
            // The fused-baseline model should agree with the synthesized
            // kernel's regime (both stream the active expert weights once).
            let fused_baseline_us = fused_grouped_gemm_latency_us(&shape, &arch);
            checks::check(
                fused_us < looped_us,
                &format!(
                    "fused grouped GEMM `{name}` ({fused_us:.1} us) is not faster than \
                     per-expert launches ({looped_us:.1} us)"
                ),
            );
            checks::check(
                fused_us < fused_baseline_us * 10.0 && fused_baseline_us < fused_us * 10.0,
                &format!(
                    "synthesized grouped GEMM `{name}` ({fused_us:.1} us) is out of regime \
                     vs. the fused baseline model ({fused_baseline_us:.1} us)"
                ),
            );
            FastPathEntry {
                group: "grouped_vs_per_expert".to_string(),
                name,
                reference_ns: looped_us * 1e3,
                fast_ns: fused_us * 1e3,
            }
        })
        .collect()
}

/// Cold vs. warm compile wall time for both new families through a
/// disk-backed [`CompileService`]; warm artifacts are checked bit-identical.
pub fn workload_cache_entries(cache_dir: &Path) -> Vec<FastPathEntry> {
    let arch = GpuArch::h100();
    let config = KernelCacheConfig {
        dir: Some(cache_dir.to_path_buf()),
        ..KernelCacheConfig::default()
    };
    let service = CompileService::with_config(arch.clone(), CompilerOptions::new(), config);
    let programs = vec![
        (
            "quant_gemm".to_string(),
            w4a16_gemm(
                QuantGemmShape::llama_70b_proj(64),
                QuantGemmConfig::default(),
            )
            .expect("W4A16 GEMM construction"),
        ),
        (
            "grouped_gemm".to_string(),
            grouped_gemm(&GroupedGemmShape::mixtral(64), GroupedGemmConfig::default())
                .expect("grouped GEMM construction"),
        ),
    ];
    let mut entries = Vec::new();
    for (name, program) in programs {
        let cold_start = Instant::now();
        let cold = service.compile(&program).expect("cold compile");
        let cold_ns = cold_start.elapsed().as_secs_f64() * 1e9;
        let warm_start = Instant::now();
        let warm = service.compile(&program).expect("warm compile");
        let warm_ns = warm_start.elapsed().as_secs_f64() * 1e9;
        checks::check(
            *warm.artifact == *cold.artifact,
            &format!("warm `{name}` artifact is not bit-identical to the cold synthesis"),
        );
        checks::check(
            warm.served_from == hexcute_e2e::ServedFrom::Memory,
            &format!("warm `{name}` compile was not an artifact-cache hit"),
        );
        entries.push(FastPathEntry {
            group: "workload_compile_warm".to_string(),
            name,
            reference_ns: cold_ns,
            fast_ns: warm_ns,
        });
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn quant_entries_compare_against_marlin() {
        let before = checks::failures();
        let entries = quant_gemm_entries(true);
        // The regime bound (0.3 < Marlin/Hexcute < 3.0, the paper reports
        // 0.89x-1.01x for the MoE analogue) is enforced inside the harness
        // itself, so a drift also fails the repro_workloads binary.
        assert_eq!(checks::failures(), before, "regime checks failed");
        assert_eq!(entries.len(), quant_token_sweep(true).len());
        for e in &entries {
            assert!(e.reference_ns > 0.0 && e.fast_ns > 0.0);
        }
    }

    #[test]
    fn grouped_entries_show_the_fusion_win() {
        let before = checks::failures();
        let entries = grouped_gemm_entries(true);
        assert_eq!(checks::failures(), before, "internal checks failed");
        assert_eq!(entries.len(), 3);
        for e in &entries {
            assert!(
                e.speedup() > 1.0,
                "{}: fused grouped GEMM must beat per-expert launches",
                e.name
            );
        }
    }

    #[test]
    fn cache_entries_verify_bit_identity() {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "hexcute-workloads-bench-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let before = checks::failures();
        let entries = workload_cache_entries(&dir);
        assert_eq!(checks::failures(), before, "internal checks failed");
        assert_eq!(entries.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
