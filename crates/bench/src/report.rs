//! Simple aligned-table reports for the reproduction harness.

use std::fmt;

/// A formatted report: a title, a header row, data rows and free-form notes.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Report title (e.g. "Table II").
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Notes printed below the table (paper-reported reference values,
    /// caveats, geometric means).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report with the given title and header.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Report {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Appends a note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Looks up a cell by row and column index.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(String::as_str)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n=== {} ===", self.title)?;
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (i, cell) in row.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(cell.len());
                write!(f, "{cell:<w$}  ")?;
            }
            writeln!(f)
        };
        print_row(f, &self.header)?;
        let total: usize = widths.iter().map(|w| w + 2).sum();
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  * {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_formats_as_aligned_table() {
        let mut r = Report::new("Table X", &["name", "value"]);
        r.push_row(vec!["alpha".to_string(), "1.00".to_string()]);
        r.push_row(vec!["a-much-longer-name".to_string(), "2".to_string()]);
        r.push_note("paper reports 1.05x");
        let s = r.to_string();
        assert!(s.contains("=== Table X ==="));
        assert!(s.contains("a-much-longer-name"));
        assert!(s.contains("* paper reports"));
        assert_eq!(r.cell(0, 1), Some("1.00"));
        assert_eq!(r.cell(5, 0), None);
    }
}
