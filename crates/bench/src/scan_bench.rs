//! Fig. 21: Mamba selective-scan latency across shapes, Hexcute vs the
//! hand-written Mamba library.

use hexcute_arch::{DType, GpuArch};
use hexcute_baselines::{library_latency_us, Library, Workload};
use hexcute_kernels::mamba::{selective_scan, ScanConfig, ScanShape};

use crate::{compile_hexcute, geomean, Report};

/// The latencies for one scan shape, in µs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanPoint {
    /// The shape.
    pub shape: ScanShape,
    /// The Mamba library (cub::BlockLoad scalar loads).
    pub library_us: f64,
    /// Hexcute.
    pub hexcute_us: f64,
}

/// The scan shapes evaluated (20 in the paper; fewer when `quick`).
pub fn scan_shapes(quick: bool) -> Vec<ScanShape> {
    let mut shapes = Vec::new();
    for &batch in &[1usize, 2, 4, 8] {
        for &seq in &[1024usize, 2048, 4096, 8192, 16384] {
            shapes.push(ScanShape::new(batch, 4096, 16, seq));
        }
    }
    if quick {
        shapes.truncate(4);
    }
    shapes
}

/// Evaluates the scan across shapes on the H100.
pub fn evaluate_scan(shapes: &[ScanShape]) -> Vec<ScanPoint> {
    let arch = GpuArch::h100();
    shapes
        .iter()
        .map(|&shape| {
            let program = selective_scan(shape, ScanConfig::default()).expect("scan kernel");
            let hexcute_us = compile_hexcute(&program, &arch).latency_us();
            let library_us = library_latency_us(
                Library::MambaLibrary,
                &Workload::new(shape.flops(), shape.bytes(), DType::F16),
                &arch,
            );
            ScanPoint {
                shape,
                library_us,
                hexcute_us,
            }
        })
        .collect()
}

/// Regenerates Fig. 21.
pub fn fig21(quick: bool) -> Report {
    let points = evaluate_scan(&scan_shapes(quick));
    let mut report = Report::new(
        "Fig. 21: Mamba selective scan latency (H100)",
        &[
            "shape (batch,dim,state,seq)",
            "Mamba library (us)",
            "Hexcute (us)",
            "speedup",
        ],
    );
    for p in &points {
        report.push_row(vec![
            format!(
                "({}, {}, {}, {})",
                p.shape.batch, p.shape.dim, p.shape.state, p.shape.seq_len
            ),
            format!("{:.1}", p.library_us),
            format!("{:.1}", p.hexcute_us),
            format!("{:.2}x", p.library_us / p.hexcute_us),
        ]);
    }
    let avg = geomean(
        &points
            .iter()
            .map(|p| p.library_us / p.hexcute_us)
            .collect::<Vec<_>>(),
    );
    report.push_note(format!("Measured geometric-mean speedup: {avg:.2}x."));
    report.push_note(
        "Paper reports an average speedup of 4.17x over the Mamba library across 20 shapes.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hexcute_scan_beats_the_library_on_every_shape() {
        let points = evaluate_scan(&scan_shapes(true));
        for p in &points {
            let speedup = p.library_us / p.hexcute_us;
            assert!(
                speedup > 1.5,
                "shape {:?}: speedup {speedup:.2} too small",
                p.shape
            );
            assert!(
                speedup < 10.0,
                "shape {:?}: speedup {speedup:.2} implausibly large",
                p.shape
            );
        }
    }

    #[test]
    fn twenty_shapes_by_default() {
        assert_eq!(scan_shapes(false).len(), 20);
    }
}
