//! Fig. 11: latency of the mixed-type MoE layer (256 experts) across token
//! counts for Marlin-old, Triton, Marlin-new and Hexcute.

use hexcute_arch::GpuArch;
use hexcute_baselines::{
    marlin_new_moe_latency_us, marlin_old_moe_latency_us, triton_latency_us, triton_moe_program,
};
use hexcute_kernels::moe::{mixed_type_moe, MoeConfig, MoeDataflow, MoeShape};

use crate::{compile_hexcute, geomean, Report};

/// The latency of every implementation for one token count, in µs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoePoint {
    /// Number of input tokens.
    pub tokens: usize,
    /// Marlin-old (vLLM v0.8.2): one launch per expert.
    pub marlin_old_us: f64,
    /// Triton-generated fused MoE.
    pub triton_us: f64,
    /// Marlin-new (vLLM v0.9.2): fused grouped GEMM.
    pub marlin_new_us: f64,
    /// Hexcute.
    pub hexcute_us: f64,
}

/// The default token sweep (a subset of the paper's sweep when `quick`).
pub fn token_sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 16, 64, 256]
    } else {
        vec![1, 4, 16, 64, 128, 256, 512, 1024, 2048]
    }
}

/// Evaluates the MoE layer across token counts on the H100.
pub fn evaluate_moe(tokens: &[usize]) -> Vec<MoePoint> {
    let arch = GpuArch::h100();
    let config = MoeConfig::default();
    tokens
        .iter()
        .map(|&t| {
            let shape = MoeShape::deepseek_r1(t);
            let hexcute_program =
                mixed_type_moe(shape, config, MoeDataflow::Efficient).expect("hexcute MoE kernel");
            let hexcute_us = compile_hexcute(&hexcute_program, &arch).latency_us();
            let triton_program = triton_moe_program(shape, config).expect("triton MoE kernel");
            let triton_us = triton_latency_us(&triton_program, &arch)
                .map(|r| r.latency_us)
                .unwrap_or(f64::INFINITY);
            MoePoint {
                tokens: t,
                marlin_old_us: marlin_old_moe_latency_us(&shape, &arch),
                triton_us,
                marlin_new_us: marlin_new_moe_latency_us(&shape, &arch),
                hexcute_us,
            }
        })
        .collect()
}

/// Regenerates Fig. 11.
pub fn fig11(quick: bool) -> Report {
    let points = evaluate_moe(&token_sweep(quick));
    let mut report = Report::new(
        "Fig. 11: mixed-type MoE latency (256 experts, H100)",
        &[
            "tokens",
            "Marlin-old (us)",
            "Triton (us)",
            "Marlin-new (us)",
            "Hexcute (us)",
            "Hexcute vs Triton",
        ],
    );
    for p in &points {
        report.push_row(vec![
            p.tokens.to_string(),
            format!("{:.1}", p.marlin_old_us),
            format!("{:.1}", p.triton_us),
            format!("{:.1}", p.marlin_new_us),
            format!("{:.1}", p.hexcute_us),
            format!("{:.2}x", p.triton_us / p.hexcute_us),
        ]);
    }
    let vs_triton = geomean(
        &points
            .iter()
            .map(|p| p.triton_us / p.hexcute_us)
            .collect::<Vec<_>>(),
    );
    let vs_old = geomean(
        &points
            .iter()
            .map(|p| p.marlin_old_us / p.hexcute_us)
            .collect::<Vec<_>>(),
    );
    let vs_new = geomean(
        &points
            .iter()
            .map(|p| p.marlin_new_us / p.hexcute_us)
            .collect::<Vec<_>>(),
    );
    report.push_note(format!(
        "Measured geometric means — vs Triton: {vs_triton:.2}x, vs Marlin-old: {vs_old:.2}x, vs Marlin-new: {vs_new:.2}x"
    ));
    report.push_note(
        "Paper reports 6.46x over Triton, 28.42x over Marlin-old and ~0.96x of Marlin-new.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hexcute_beats_triton_and_marlin_old_everywhere() {
        let points = evaluate_moe(&[16, 256]);
        for p in &points {
            assert!(
                p.hexcute_us < p.triton_us,
                "tokens={}: Hexcute should beat Triton",
                p.tokens
            );
            assert!(
                p.hexcute_us < p.marlin_old_us,
                "tokens={}: Hexcute should beat Marlin-old",
                p.tokens
            );
            // Hexcute is in the same ballpark as the fused Marlin-new kernel.
            let ratio = p.hexcute_us / p.marlin_new_us;
            assert!(
                ratio < 4.0,
                "tokens={}: Hexcute should be near Marlin-new, got {ratio:.2}x",
                p.tokens
            );
        }
    }

    #[test]
    fn fig11_report_has_requested_rows() {
        let report = fig11(true);
        assert_eq!(report.rows.len(), token_sweep(true).len());
    }
}
