//! Process-level pass/fail accounting for the `repro_*` binaries.
//!
//! The harness functions verify internal invariants (warm cache hits,
//! bit-identical replays) as they run. Historically some of those outcomes
//! were *printed* but never failed the process, so a broken invariant could
//! scroll past in CI with exit code 0. Every check now goes through
//! [`check`], and every `repro_*` binary ends its `main` with
//! [`exit_if_failed`]: any failed check turns into a nonzero exit.

use std::sync::atomic::{AtomicU64, Ordering};

static FAILED: AtomicU64 = AtomicU64::new(0);
static PASSED: AtomicU64 = AtomicU64::new(0);

/// Records one internal invariant check. A failure is printed immediately
/// (prefixed `CHECK FAILED`) and remembered for [`exit_if_failed`].
pub fn check(condition: bool, message: &str) {
    if condition {
        PASSED.fetch_add(1, Ordering::Relaxed);
    } else {
        FAILED.fetch_add(1, Ordering::Relaxed);
        eprintln!("CHECK FAILED: {message}");
    }
}

/// Number of checks that failed so far in this process.
pub fn failures() -> u64 {
    FAILED.load(Ordering::Relaxed)
}

/// Number of checks that passed so far in this process.
pub fn passes() -> u64 {
    PASSED.load(Ordering::Relaxed)
}

/// Exits the process with a nonzero status when any [`check`] failed,
/// printing a one-line summary either way. Call this at the *end* of every
/// `repro_*` binary's `main` (after writing output files, so a failed check
/// never suppresses the artifacts a human would want for debugging).
pub fn exit_if_failed() {
    let failed = failures();
    let passed = passes();
    if failed > 0 {
        eprintln!("\n{failed} internal check(s) FAILED ({passed} passed) — exiting nonzero");
        std::process::exit(1);
    }
    if passed > 0 {
        println!("\nall {passed} internal checks passed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_checks_do_not_accumulate_failures() {
        let before = failures();
        check(true, "always fine");
        check(true, "still fine");
        assert_eq!(failures(), before);
        assert!(passes() >= 2);
    }
}
