//! Multi-tenant bursty serving-traffic replay for the priority-aware,
//! admission-controlled compile front-end (PR 10).
//!
//! Eight tenants replay a bursty request stream — thousands of requests
//! over the per-decode-step kernels of all five Fig. 13 models, each tenant
//! cycling its model's kernels so the stream mixes cold synthesis with warm
//! hits and exhibits the recurring fingerprint transitions the speculative
//! prefetcher mines. Roughly one request in ten rides the
//! [`Priority::Background`] class; the rest are latency-critical. Four
//! submitter threads interleave tenant bursts with short lulls (the lulls
//! are when spare admission capacity exists for prefetch jobs).
//!
//! Reported per class: p50/p99/p999 client-observed latency, plus the
//! queue-depth, slot-utilization and hit-rate counters that stay meaningful
//! on a 1-CPU host (they count scheduling decisions and cache tiers, not
//! wall-clock parallelism).
//!
//! Four properties are *checked* through [`crate::checks`], so the
//! `repro_serving_traffic` binary exits nonzero on violation:
//!
//! 1. **No priority inversion** — `priority_inversions == 0`: no
//!    background grant ever overtook a parked latency-critical waiter
//!    outside the periodic anti-starvation boost.
//! 2. **No starved tenant** — every tenant completes every one of its
//!    requests.
//! 3. **Speculation earns hits** — at least one demand request is served
//!    from a warm-tier entry placed there by the prefetcher.
//! 4. **Bit-identical artifacts** — every served artifact equals a freshly
//!    compiled reference for its fingerprint, so priority/tenant scheduling
//!    (at any `HEXCUTE_THREADS`) never changes what is served.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use hexcute_arch::GpuArch;
use hexcute_core::{Compiler, CompilerOptions, KernelArtifact, KernelCacheConfig};
use hexcute_e2e::{
    decode_step_programs, CompileService, ModelConfig, Priority, ServiceConfig, ServiceStats,
    TenantId,
};
use hexcute_ir::Program;

use crate::checks;

/// Shape of the replay; [`TrafficConfig::default`] is the committed
/// `BENCH_pr10.json` configuration, tests scale it down.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Number of tenants (tenant `t` replays the kernels of model
    /// `t % 5`).
    pub tenants: usize,
    /// Requests each tenant submits.
    pub requests_per_tenant: usize,
    /// Submitter threads; tenants are dealt round-robin across them.
    pub submitters: usize,
    /// Consecutive same-tenant requests per burst.
    pub burst: usize,
    /// Pause between bursts (spare capacity for prefetch jobs).
    pub lull: Duration,
    /// Admission: concurrent synthesis slots.
    pub max_concurrent: usize,
    /// Per-tenant in-flight cap (0 = no quota).
    pub tenant_quota: usize,
    /// Memory-tier capacity; deliberately smaller than the distinct
    /// working set so warm entries spill to disk and the prefetcher has
    /// promotions to win.
    pub memory_capacity: usize,
    /// Percentage of requests submitted as [`Priority::Background`].
    pub background_percent: u64,
    /// Replay seed (class choice and lull jitter).
    pub seed: u64,
    /// Fail the run unless `prefetch_hits > 0`. The full-size replay must
    /// earn speculative hits; scaled-down smoke runs may legitimately not.
    pub require_prefetch_hits: bool,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            tenants: 8,
            requests_per_tenant: 250,
            submitters: 4,
            burst: 40,
            lull: Duration::from_millis(2),
            max_concurrent: 2,
            tenant_quota: 1,
            memory_capacity: 8,
            background_percent: 10,
            seed: 0x7261_ffff_5eed,
            require_prefetch_hits: true,
        }
    }
}

/// Per-class latency summary (client-observed, milliseconds).
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassLatency {
    /// Requests completed in this class.
    pub requests: u64,
    /// Median latency.
    pub p50_ms: f64,
    /// 99th percentile latency.
    pub p99_ms: f64,
    /// 99.9th percentile latency.
    pub p999_ms: f64,
}

/// Everything the replay measured.
#[derive(Debug, Clone)]
pub struct TrafficResult {
    /// Total requests submitted.
    pub requests: u64,
    /// Distinct kernel fingerprints in the trace.
    pub distinct: usize,
    /// Latency-critical class summary.
    pub latency_critical: ClassLatency,
    /// Background class summary.
    pub background: ClassLatency,
    /// Requests served from the memory tier.
    pub from_memory: u64,
    /// Requests served from the disk tier.
    pub from_disk: u64,
    /// Requests that ran the synthesis themselves.
    pub from_synthesis: u64,
    /// Requests that joined an in-flight synthesis.
    pub from_coalesced: u64,
    /// Cache-tier hit rate over all requests (memory + disk).
    pub hit_rate: f64,
    /// Fraction of the wall-clock × slots budget spent synthesizing — the
    /// 1-CPU-meaningful utilization figure (scheduling time, not
    /// parallel speedup).
    pub slot_utilization: f64,
    /// Share of memory-tier hits that the prefetcher placed there.
    pub prefetch_hit_share: f64,
    /// Served artifacts that differed from the fresh-compile reference
    /// (must be 0).
    pub mismatches: u64,
    /// Requests per second over the whole replay.
    pub requests_per_sec: f64,
    /// Replay wall-clock seconds.
    pub wall_s: f64,
    /// Service counters after the replay drained.
    pub stats: ServiceStats,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn class_summary(mut ms: Vec<f64>) -> ClassLatency {
    ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ClassLatency {
        requests: ms.len() as u64,
        p50_ms: percentile(&ms, 0.50),
        p99_ms: percentile(&ms, 0.99),
        p999_ms: percentile(&ms, 0.999),
    }
}

fn unique_temp_dir() -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "hexcute-traffic-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The five Fig. 13 models' decode-step kernels at batch 1 and batch 8 —
/// one program list per model × batch pair; tenant `t` cycles list
/// `t % 10`, so eight tenants cover all five models and mix the batch
/// sizes.
pub fn model_kernel_lists() -> Vec<Vec<Program>> {
    let models = [
        ModelConfig::deepseek_r1_awq(),
        ModelConfig::jamba_mini(),
        ModelConfig::qwen3_32b(),
        ModelConfig::llama3_70b_awq(),
        ModelConfig::mixtral_8x7b(),
    ];
    [1usize, 8]
        .iter()
        .flat_map(|&batch| {
            models
                .iter()
                .map(move |model| decode_step_programs(model, batch, 2048))
        })
        .collect()
}

/// Replays the traffic and verifies the four checked properties.
pub fn run(config: &TrafficConfig) -> TrafficResult {
    let lists = Arc::new(model_kernel_lists());
    let dir = unique_temp_dir();
    let service = Arc::new(CompileService::with_service_config(
        GpuArch::h100(),
        CompilerOptions::new(),
        KernelCacheConfig {
            dir: Some(dir.clone()),
            memory_capacity: config.memory_capacity,
            ..KernelCacheConfig::default()
        },
        ServiceConfig {
            max_concurrent: config.max_concurrent,
            queue_capacity: 512,
            background_queue_capacity: 512,
            tenant_quota: config.tenant_quota,
            boost_interval: 4,
            prefetch: true,
            seed: 42,
            ..ServiceConfig::default()
        },
    ));

    let latencies: Arc<[Mutex<Vec<f64>>; 2]> =
        Arc::new([Mutex::new(Vec::new()), Mutex::new(Vec::new())]);
    let served: Arc<Mutex<HashMap<u64, Arc<KernelArtifact>>>> =
        Arc::new(Mutex::new(HashMap::new()));
    let tier_counts: Arc<[AtomicU64; 4]> = Arc::new(std::array::from_fn(|_| AtomicU64::new(0)));
    let synth_busy_us = Arc::new(AtomicU64::new(0));
    let scheduling_mismatches = Arc::new(AtomicU64::new(0));
    let completed: Arc<Vec<AtomicU64>> =
        Arc::new((0..config.tenants).map(|_| AtomicU64::new(0)).collect());

    let barrier = Arc::new(Barrier::new(config.submitters));
    let started = Instant::now();
    let workers: Vec<_> = (0..config.submitters)
        .map(|submitter| {
            let config = config.clone();
            let lists = Arc::clone(&lists);
            let service = Arc::clone(&service);
            let latencies = Arc::clone(&latencies);
            let served = Arc::clone(&served);
            let tier_counts = Arc::clone(&tier_counts);
            let synth_busy_us = Arc::clone(&synth_busy_us);
            let scheduling_mismatches = Arc::clone(&scheduling_mismatches);
            let completed = Arc::clone(&completed);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let owned: Vec<usize> = (0..config.tenants)
                    .filter(|t| t % config.submitters == submitter)
                    .collect();
                let mut rng = config.seed ^ (submitter as u64) << 32;
                barrier.wait();
                // Each tenant's stream is consumed in bursts of consecutive
                // requests so the fingerprint walk is visible to the
                // prefetcher's transition model; lulls between bursts leave
                // spare admission capacity for the prefetch jobs.
                let mut next = vec![0usize; owned.len()];
                loop {
                    let mut progressed = false;
                    for (slot, &tenant) in owned.iter().enumerate() {
                        let programs = &lists[tenant % lists.len()];
                        let burst_end = (next[slot] + config.burst).min(config.requests_per_tenant);
                        for i in next[slot]..burst_end {
                            progressed = true;
                            let program = &programs[(tenant + i) % programs.len()];
                            let priority = if splitmix64(&mut rng) % 100 < config.background_percent
                            {
                                Priority::Background
                            } else {
                                Priority::LatencyCritical
                            };
                            let begin = Instant::now();
                            let response = service
                                .compile_as(program, priority, TenantId(tenant as u32))
                                .unwrap_or_else(|e| {
                                    panic!("tenant {tenant} request {i} failed: {e}")
                                });
                            let elapsed = begin.elapsed();
                            latencies[priority.index()]
                                .lock()
                                .unwrap()
                                .push(elapsed.as_secs_f64() * 1e3);
                            let tier = match response.served_from {
                                hexcute_e2e::ServedFrom::Memory => 0,
                                hexcute_e2e::ServedFrom::Disk => 1,
                                hexcute_e2e::ServedFrom::Synthesized => {
                                    synth_busy_us
                                        .fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
                                    2
                                }
                                hexcute_e2e::ServedFrom::Coalesced => 3,
                            };
                            tier_counts[tier].fetch_add(1, Ordering::Relaxed);
                            let fingerprint = response.artifact.fingerprint;
                            let mut served = served.lock().unwrap();
                            match served.get(&fingerprint) {
                                Some(seen) if **seen != *response.artifact => {
                                    scheduling_mismatches.fetch_add(1, Ordering::Relaxed);
                                }
                                Some(_) => {}
                                None => {
                                    served.insert(fingerprint, Arc::clone(&response.artifact));
                                }
                            }
                            completed[tenant].fetch_add(1, Ordering::Relaxed);
                        }
                        next[slot] = burst_end;
                        if burst_end < config.requests_per_tenant {
                            // Jittered lull so the submitters desynchronize.
                            let jitter = splitmix64(&mut rng) % 1000;
                            std::thread::sleep(config.lull + Duration::from_micros(jitter));
                        }
                    }
                    if !progressed {
                        break;
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("submitter threads must complete");
    }
    let wall = started.elapsed();
    // Let in-flight prefetch jobs settle before sampling the counters.
    hexcute_parallel::wait_background_idle(Duration::from_secs(10));
    let stats = service.stats();

    // Bit-identity: every served artifact must equal a fresh compile of its
    // program — scheduling (priority, tenant, thread count) must never
    // change what is served.
    let served = Arc::try_unwrap(served)
        .expect("submitters have exited")
        .into_inner()
        .unwrap();
    let reference = Compiler::new(GpuArch::h100());
    let mut mismatches = scheduling_mismatches.load(Ordering::Relaxed);
    for list in lists.iter() {
        for program in list {
            let fingerprint = reference.artifact_fingerprint(program);
            let Some(artifact) = served.get(&fingerprint) else {
                continue;
            };
            let fresh = reference
                .compile_artifact(program)
                .unwrap_or_else(|e| panic!("reference compile of {} failed: {e}", program.name));
            if **artifact != fresh {
                mismatches += 1;
            }
        }
    }

    let requests = (config.tenants * config.requests_per_tenant) as u64;
    for (tenant, count) in completed.iter().enumerate() {
        let count = count.load(Ordering::Relaxed);
        checks::check(
            count == config.requests_per_tenant as u64,
            &format!(
                "tenant {tenant} must complete all {} requests (starvation check), got {count}",
                config.requests_per_tenant
            ),
        );
    }
    checks::check(
        stats.priority_inversions == 0,
        &format!(
            "no background grant may overtake a parked latency-critical waiter \
             outside a boost, saw {}",
            stats.priority_inversions
        ),
    );
    if config.require_prefetch_hits {
        checks::check(
            stats.prefetch_hits > 0,
            "the speculative prefetcher must earn at least one warm-tier demand hit",
        );
    }
    checks::check(
        mismatches == 0,
        &format!("{mismatches} served artifacts diverged from the fresh-compile reference"),
    );
    checks::check(
        stats.queue_depth == 0,
        &format!(
            "the admission queue must drain, depth {}",
            stats.queue_depth
        ),
    );

    let [latency_ms, background_ms] = Arc::try_unwrap(latencies)
        .expect("submitters have exited")
        .map(|m| m.into_inner().unwrap());
    let from_memory = tier_counts[0].load(Ordering::Relaxed);
    let from_disk = tier_counts[1].load(Ordering::Relaxed);
    let slot_budget = wall.as_secs_f64() * config.max_concurrent.max(1) as f64;
    let _ = std::fs::remove_dir_all(&dir);
    TrafficResult {
        requests,
        distinct: served.len(),
        latency_critical: class_summary(latency_ms),
        background: class_summary(background_ms),
        from_memory,
        from_disk,
        from_synthesis: tier_counts[2].load(Ordering::Relaxed),
        from_coalesced: tier_counts[3].load(Ordering::Relaxed),
        hit_rate: (from_memory + from_disk) as f64 / requests.max(1) as f64,
        slot_utilization: (synth_busy_us.load(Ordering::Relaxed) as f64 / 1e6) / slot_budget,
        prefetch_hit_share: stats.prefetch_hits as f64 / from_memory.max(1) as f64,
        mismatches,
        requests_per_sec: requests as f64 / wall.as_secs_f64().max(1e-9),
        wall_s: wall.as_secs_f64(),
        stats,
    }
}

/// Renders the result as the `BENCH_pr10.json` document.
pub fn to_json(config: &TrafficConfig, r: &TrafficResult) -> String {
    let class = |c: &ClassLatency| {
        format!(
            "{{ \"requests\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3} }}",
            c.requests, c.p50_ms, c.p99_ms, c.p999_ms
        )
    };
    let s = &r.stats;
    format!(
        "{{\n  \"benchmark\": \"priority-aware multi-tenant serving traffic\",\n  \
         \"meta\": {{\n    \"threads\": {},\n    \"host_parallelism\": {},\n    \
         \"os\": \"{}\",\n    \"arch\": \"{}\"\n  }},\n  \"trace\": {{\n    \
         \"tenants\": {},\n    \"requests\": {},\n    \"distinct_fingerprints\": {},\n    \
         \"background_percent\": {},\n    \"burst\": {},\n    \"seed\": {}\n  }},\n  \
         \"latency\": {{\n    \"latency_critical\": {},\n    \"background\": {}\n  }},\n  \
         \"serving\": {{\n    \"from_memory\": {},\n    \"from_disk\": {},\n    \
         \"from_synthesis\": {},\n    \"from_coalesced\": {},\n    \"hit_rate\": {:.4},\n    \
         \"slot_utilization\": {:.4},\n    \"requests_per_sec\": {:.1},\n    \
         \"wall_s\": {:.2}\n  }},\n  \"scheduling\": {{\n    \"max_queue_depth\": {},\n    \
         \"background_requests\": {},\n    \"background_boosts\": {},\n    \
         \"priority_inversions\": {},\n    \"shed\": {},\n    \"coalesced\": {},\n    \
         \"syntheses\": {}\n  }},\n  \"prefetch\": {{\n    \"issued\": {},\n    \
         \"warmed\": {},\n    \"dropped\": {},\n    \"hits\": {},\n    \
         \"warm_hit_share\": {:.4},\n    \"stores\": {}\n  }},\n  \
         \"determinism\": {{\n    \"mismatches\": {}\n  }},\n  \
         \"checks\": {{ \"passed\": {}, \"failed\": {} }}\n}}\n",
        hexcute_parallel::worker_count(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        std::env::consts::OS,
        std::env::consts::ARCH,
        config.tenants,
        r.requests,
        r.distinct,
        config.background_percent,
        config.burst,
        config.seed,
        class(&r.latency_critical),
        class(&r.background),
        r.from_memory,
        r.from_disk,
        r.from_synthesis,
        r.from_coalesced,
        r.hit_rate,
        r.slot_utilization,
        r.requests_per_sec,
        r.wall_s,
        s.max_queue_depth,
        s.background_requests,
        s.background_boosts,
        s.priority_inversions,
        s.shed,
        s.coalesced,
        s.syntheses,
        s.prefetch_issued,
        s.prefetch_warmed,
        s.prefetch_dropped,
        s.prefetch_hits,
        r.prefetch_hit_share,
        s.cache.prefetch_stores,
        r.mismatches,
        checks::passes(),
        checks::failures(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_down_replay_passes_its_invariants() {
        let config = TrafficConfig {
            tenants: 2,
            requests_per_tenant: 30,
            submitters: 2,
            burst: 10,
            lull: Duration::from_millis(1),
            // Smoke scale: two tenants can't be expected to earn
            // speculative hits in 60 requests.
            require_prefetch_hits: false,
            ..TrafficConfig::default()
        };
        let before = checks::failures();
        let result = run(&config);
        assert_eq!(checks::failures(), before, "invariant checks must pass");
        assert_eq!(result.requests, 60);
        assert_eq!(result.mismatches, 0);
        assert!(result.distinct > 0);
        assert_eq!(
            result.latency_critical.requests + result.background.requests,
            60
        );
        let json = to_json(&config, &result);
        for key in [
            "\"latency_critical\"",
            "\"background\"",
            "\"p999_ms\"",
            "\"slot_utilization\"",
            "\"max_queue_depth\"",
            "\"warm_hit_share\"",
            "\"mismatches\"",
        ] {
            assert!(json.contains(key), "JSON must contain {key}: {json}");
        }
    }
}
