//! Cold vs. warm serving throughput over the kernel-artifact cache.
//!
//! Reproduces the deployment half of the paper's Fig. 13 setting: a
//! vLLM-style server compiles the same few dozen kernels on every process
//! start. The harness replays one request stream (every model × batch size
//! of the Fig. 13 configurations) three times against a disk-backed
//! [`CompileService`]:
//!
//! 1. **cold** — empty cache: every kernel is synthesized;
//! 2. **memory-warm** — same service: every kernel is an in-memory hit;
//! 3. **disk-warm** — a *fresh* service over the same cache directory
//!    (a simulated process restart): every kernel is loaded from disk.
//!
//! The entries feed `BENCH_pr4.json` via the `repro_serving` binary
//! (`reference_ns` = cold, `fast_ns` = warm, so each group's geomean is the
//! warm-over-cold speedup).

use std::path::Path;
use std::time::Instant;

use hexcute_arch::GpuArch;
use hexcute_core::CompilerOptions;
use hexcute_core::KernelCacheConfig;
use hexcute_e2e::{
    decode_latency_ms_with, CompileService, DecodeReport, KernelBackend, ModelConfig,
};

use crate::fastpath::FastPathEntry;

/// The request stream: one decode-step estimate per (model, batch size).
/// Batch size changes the kernel shapes, so each pair is a distinct set of
/// artifact fingerprints.
fn request_matrix() -> Vec<(ModelConfig, usize)> {
    let models = [
        ModelConfig::deepseek_r1_awq(),
        ModelConfig::jamba_mini(),
        ModelConfig::qwen3_32b(),
        ModelConfig::llama3_70b_awq(),
        ModelConfig::mixtral_8x7b(),
    ];
    let batches = [1usize, 8];
    models
        .iter()
        .flat_map(|m| batches.iter().map(move |b| (m.clone(), *b)))
        .collect()
}

fn short_name(model: &ModelConfig) -> String {
    model
        .name
        .to_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Serves the whole request stream once, returning per-request wall times
/// (ns) and the reports (used to check warm results are bit-identical).
fn serve_pass(service: &CompileService) -> (Vec<f64>, Vec<DecodeReport>) {
    let mut times = Vec::new();
    let mut reports = Vec::new();
    for (model, batch) in request_matrix() {
        let start = Instant::now();
        let report = decode_latency_ms_with(&model, KernelBackend::Hexcute, batch, 2048, service);
        times.push(start.elapsed().as_secs_f64() * 1e9);
        reports.push(report);
    }
    (times, reports)
}

/// Runs the cold / memory-warm / disk-warm passes against `cache_dir` and
/// returns the bench entries plus human-readable summary notes (throughput
/// and the stats of every shared cache involved). Panics if a warm pass
/// reports different latencies than the cold pass — the cache must be
/// bit-identical to synthesis.
pub fn serving_entries(cache_dir: &Path) -> (Vec<FastPathEntry>, Vec<String>) {
    let arch = GpuArch::h100();
    let config = KernelCacheConfig {
        dir: Some(cache_dir.to_path_buf()),
        ..KernelCacheConfig::default()
    };
    let service = CompileService::with_config(arch.clone(), CompilerOptions::new(), config.clone());

    let cold_start = Instant::now();
    let (cold_ns, cold_reports) = serve_pass(&service);
    let cold_total = cold_start.elapsed().as_secs_f64();
    assert!(
        service.stats().syntheses > 0,
        "the cold pass served entirely from a pre-populated cache at {} — \
         point the harness at a fresh directory for a valid cold measurement",
        cache_dir.display()
    );

    let warm_start = Instant::now();
    let (warm_ns, warm_reports) = serve_pass(&service);
    let warm_total = warm_start.elapsed().as_secs_f64();
    assert_eq!(
        cold_reports, warm_reports,
        "memory-warm serving must be bit-identical to cold serving"
    );

    // A fresh service over the same directory simulates a process restart:
    // the memory front is empty, every artifact loads from disk.
    let restarted = CompileService::with_config(arch, CompilerOptions::new(), config);
    let disk_start = Instant::now();
    let (disk_ns, disk_reports) = serve_pass(&restarted);
    let disk_total = disk_start.elapsed().as_secs_f64();
    assert_eq!(
        cold_reports, disk_reports,
        "disk-warm serving must be bit-identical to cold serving"
    );
    // Under HEXCUTE_FAULTS, injected disk corruption legitimately forces
    // re-syntheses on the warm restart (they heal the cache, and the
    // bit-identity assertion above still holds); the cache-hit-count
    // invariant only applies to a fault-free run.
    if hexcute_core::faults::global().is_none() {
        assert_eq!(
            restarted.stats().syntheses,
            0,
            "a warm restart must serve entirely from the artifact cache"
        );
    }

    let mut entries = Vec::new();
    for (i, (model, batch)) in request_matrix().into_iter().enumerate() {
        let name = format!("{}_b{batch}", short_name(&model));
        entries.push(FastPathEntry {
            group: "serving_warm_memory".to_string(),
            name: name.clone(),
            reference_ns: cold_ns[i],
            fast_ns: warm_ns[i],
        });
        entries.push(FastPathEntry {
            group: "serving_warm_disk".to_string(),
            name,
            reference_ns: cold_ns[i],
            fast_ns: disk_ns[i],
        });
    }

    let n = cold_ns.len() as f64;
    let notes = vec![
        format!(
            "throughput: cold {:.2} req/s, memory-warm {:.2} req/s, disk-warm (restart) {:.2} req/s",
            n / cold_total.max(1e-9),
            n / warm_total.max(1e-9),
            n / disk_total.max(1e-9),
        ),
        format!("serving service: {}", service.stats()),
        format!("restarted service: {}", restarted.stats()),
    ];
    (entries, notes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serving_harness_reports_warm_speedups_and_cleans_up() {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "hexcute-serving-bench-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let (entries, notes) = serving_entries(&dir);
        // 10 requests (5 models × 2 batch sizes) × 2 warm variants.
        assert_eq!(entries.len(), 20);
        assert!(entries
            .iter()
            .all(|e| e.reference_ns > 0.0 && e.fast_ns > 0.0));
        assert!(notes.iter().any(|n| n.contains("throughput")));
        // The cache directory was populated by the cold pass.
        assert!(std::fs::read_dir(&dir)
            .map(|d| d.count() > 0)
            .unwrap_or(false));
        std::fs::remove_dir_all(&dir).ok();
    }
}
