//! Criterion micro-benchmarks of the layout algebra: the operations at the
//! heart of constraint construction and solving (composition, inversion,
//! complement) and the swizzle evaluation used by the bank-conflict pass.
//!
//! Every algebra operation is measured twice: once through the recursive
//! reference path (`…/reference`, the pre-fast-path behaviour) and once
//! through the flat memoized fast path (`…/fast`, the default). See
//! `hexcute_bench::fastpath` / `repro_fastpath` for the machine-readable
//! before/after comparison.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hexcute_layout::{ituple, set_fast_path, Layout, Swizzle, SwizzledLayout, TvLayout};

fn bench_layout_algebra(c: &mut Criterion) {
    let mma_a = Layout::new(ituple![(4, 8), (2, 2, 2)], ituple![(32, 1), (16, 8, 128)]).unwrap();
    let ldmatrix_q = Layout::new(ituple![(4, 8), (2, 4)], ituple![(64, 1), (32, 8)]).unwrap();
    let tile = Layout::column_major(&[128, 64]);
    let complement_arg = Layout::from_flat(&[8, 4], &[1, 32]);
    let coalesce_arg = Layout::from_flat(&[2, 4, 8, 2, 4], &[1, 2, 8, 64, 128]);

    for (suffix, fast) in [("reference", false), ("fast", true)] {
        set_fast_path(fast);
        c.bench_function(&format!("layout/compose/{suffix}"), |b| {
            b.iter(|| black_box(&tile).compose(black_box(&mma_a)).unwrap())
        });
        c.bench_function(&format!("layout/right_inverse/{suffix}"), |b| {
            b.iter(|| black_box(&ldmatrix_q).right_inverse().unwrap())
        });
        c.bench_function(&format!("layout/complement/{suffix}"), |b| {
            b.iter(|| {
                black_box(&complement_arg)
                    .complement(black_box(8192))
                    .unwrap()
            })
        });
        c.bench_function(&format!("layout/coalesce/{suffix}"), |b| {
            b.iter(|| black_box(&coalesce_arg).coalesce())
        });
        c.bench_function(&format!("layout/map_sweep_1k/{suffix}"), |b| {
            b.iter(|| {
                (0..1024usize)
                    .map(|i| mma_a.map(black_box(i)))
                    .sum::<usize>()
            })
        });
        c.bench_function(&format!("tv/expand_mma_atom_to_128x128/{suffix}"), |b| {
            let atom = TvLayout::new(
                Layout::from_flat(&[4, 8], &[32, 1]),
                Layout::from_flat(&[2, 2], &[16, 8]),
                vec![16, 8],
            )
            .unwrap();
            b.iter(|| {
                atom.expand(
                    &[
                        hexcute_layout::RepeatMode::along(2, 0),
                        hexcute_layout::RepeatMode::along(2, 1),
                    ],
                    &[
                        hexcute_layout::RepeatMode::along(4, 0),
                        hexcute_layout::RepeatMode::along(8, 1),
                    ],
                )
                .unwrap()
            })
        });
    }
    set_fast_path(true);

    // Swizzles do not go through the algebra cache; measured once.
    c.bench_function("layout/swizzle_apply_1k", |b| {
        let s = Swizzle::new(3, 3, 3);
        b.iter(|| (0..1024usize).map(|x| s.apply(black_box(x))).sum::<usize>())
    });
    c.bench_function("layout/swizzled_map_coords", |b| {
        let sl = SwizzledLayout::new(Swizzle::new(3, 3, 3), Layout::row_major(&[64, 64]));
        b.iter(|| {
            let mut acc = 0usize;
            for r in 0..64 {
                acc += sl.map_coords(&[black_box(r), 0]);
            }
            acc
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_layout_algebra
}
criterion_main!(benches);
