//! Criterion benchmarks of the synthesis engine and the compiler driver,
//! including the anchor-selection and swizzle ablations called out in
//! DESIGN.md.
//!
//! The end-to-end synthesis and compilation benchmarks run through both the
//! serial reference path (`…/reference`) and the memoized, parallel fast
//! path (`…/fast`, the default).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use hexcute_arch::GpuArch;
use hexcute_core::{Compiler, CompilerOptions};
use hexcute_costmodel::{CompletionBounds, CostModel};
use hexcute_kernels::gemm::{fp16_gemm, GemmConfig, GemmShape};
use hexcute_kernels::moe::{mixed_type_moe, MoeConfig, MoeDataflow, MoeShape};
use hexcute_layout::set_fast_path;
use hexcute_synthesis::{SynthesisOptions, Synthesizer};

fn bench_synthesis(c: &mut Criterion) {
    let arch = GpuArch::a100();
    let h100 = GpuArch::h100();
    let gemm = fp16_gemm(GemmShape::new(4096, 4096, 4096), GemmConfig::default()).unwrap();
    let moe = mixed_type_moe(
        MoeShape::deepseek_r1(64),
        MoeConfig::default(),
        MoeDataflow::Efficient,
    )
    .unwrap();

    for (suffix, fast) in [("reference", false), ("fast", true)] {
        set_fast_path(fast);
        c.bench_function(&format!("synthesis/gemm_all_candidates/{suffix}"), |b| {
            b.iter(|| {
                Synthesizer::new(black_box(&gemm), &arch, SynthesisOptions::default())
                    .synthesize()
                    .unwrap()
            })
        });
        // Full compilation (synthesis + cost model + perf estimation), uncached.
        c.bench_function(&format!("compiler/compile_gemm_uncached/{suffix}"), |b| {
            b.iter_batched(
                || Compiler::with_options(arch.clone(), CompilerOptions::new()),
                |compiler| compiler.compile(black_box(&gemm)).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    set_fast_path(true);

    c.bench_function("synthesis/moe_all_candidates", |b| {
        b.iter(|| {
            Synthesizer::new(black_box(&moe), &h100, SynthesisOptions::default())
                .synthesize()
                .unwrap()
        })
    });
    // Ablation: disabling swizzle selection (bank conflicts remain).
    c.bench_function("synthesis/gemm_no_swizzles", |b| {
        let options = SynthesisOptions {
            disable_swizzles: true,
            ..SynthesisOptions::default()
        };
        b.iter(|| {
            Synthesizer::new(black_box(&gemm), &arch, options.clone())
                .synthesize()
                .unwrap()
        })
    });

    // PR 9: branch-and-bound pruned selection against scoring the full
    // enumeration, both serial, on the relaxed-cap (enlarged) choice space.
    let enlarged = SynthesisOptions {
        max_candidates: 4096,
        node_budget: None,
        beam_width: None,
        parallel_workers: Some(1),
        parallel_subtree_depth: Some(0),
        ..SynthesisOptions::default()
    };
    c.bench_function("synthesis_pruned/gemm_exhaustive_argmin", |b| {
        b.iter(|| {
            let candidates = Synthesizer::new(black_box(&gemm), &arch, enlarged.clone())
                .synthesize()
                .unwrap();
            let model = CostModel::new(&arch);
            candidates
                .into_iter()
                .min_by(|x, y| {
                    model
                        .estimate(&gemm, x)
                        .total_cycles
                        .total_cmp(&model.estimate(&gemm, y).total_cycles)
                })
                .unwrap()
        })
    });
    c.bench_function("synthesis_pruned/gemm_branch_and_bound", |b| {
        b.iter(|| {
            let model = CostModel::new(&arch);
            let mut bounder = CompletionBounds::new(&model, &gemm);
            Synthesizer::new(black_box(&gemm), &arch, enlarged.clone())
                .synthesize_pruned(&mut bounder, None)
                .unwrap()
                .unwrap()
        })
    });

    // PR 3: the parallel subtree walk at explicit worker counts against the
    // serial incremental walk (`w1` uses the serial path by construction).
    for workers in [1usize, 2, 4] {
        let options = SynthesisOptions {
            parallel_workers: Some(workers),
            ..SynthesisOptions::default()
        };
        c.bench_function(&format!("synthesis_parallel/gemm_walk/w{workers}"), |b| {
            b.iter(|| {
                Synthesizer::new(black_box(&gemm), &arch, options.clone())
                    .synthesize()
                    .unwrap()
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_synthesis
}
criterion_main!(benches);
