//! Criterion benchmarks of the functional and performance simulators.
//!
//! The functional simulator is measured through both the table-driven fast
//! path (`…/fast`, the default) and the element-by-element reference path
//! (`…/reference`); the two produce bit-identical buffers.

use std::collections::HashMap;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hexcute_arch::{DType, GpuArch};
use hexcute_core::Compiler;
use hexcute_ir::KernelBuilder;
use hexcute_kernels::gemm::{fp16_gemm, GemmConfig, GemmShape};
use hexcute_layout::{set_fast_path, Layout};
use hexcute_sim::{estimate_kernel, FunctionalSim};

fn small_gemm_program() -> hexcute_ir::Program {
    let (m, n, k) = (64usize, 64usize, 64usize);
    let mut kb = KernelBuilder::new("bench_gemm", 128);
    let ga = kb.global_view(
        "a",
        DType::F16,
        Layout::from_flat(&[m, k], &[k, 1]),
        &[m, k],
    );
    let gb = kb.global_view(
        "b",
        DType::F16,
        Layout::from_flat(&[n, k], &[k, 1]),
        &[n, k],
    );
    let gc = kb.global_view(
        "c",
        DType::F32,
        Layout::from_flat(&[m, n], &[n, 1]),
        &[m, n],
    );
    let sa = kb.shared_tensor("sa", DType::F16, &[m, k]);
    let sb = kb.shared_tensor("sb", DType::F16, &[n, k]);
    let ra = kb.register_tensor("ra", DType::F16, &[m, k]);
    let rb = kb.register_tensor("rb", DType::F16, &[n, k]);
    let rc = kb.register_tensor("rc", DType::F32, &[m, n]);
    kb.fill(rc, 0.0);
    kb.copy(ga, sa);
    kb.copy(gb, sb);
    kb.copy(sa, ra);
    kb.copy(sb, rb);
    kb.gemm(rc, ra, rb);
    kb.copy(rc, gc);
    kb.build().unwrap()
}

fn bench_simulation(c: &mut Criterion) {
    let arch = GpuArch::a100();
    let program = small_gemm_program();
    let compiled = Compiler::new(arch.clone()).compile(&program).unwrap();

    for (suffix, fast) in [("reference", false), ("fast", true)] {
        set_fast_path(fast);
        c.bench_function(&format!("sim/functional_gemm_64x64x64/{suffix}"), |b| {
            let mut inputs = HashMap::new();
            inputs.insert("a".to_string(), vec![0.5f32; 64 * 64]);
            inputs.insert("b".to_string(), vec![0.25f32; 64 * 64]);
            let sim = FunctionalSim::new(&compiled.program, &compiled.candidate);
            b.iter(|| sim.run(black_box(&inputs)).unwrap())
        });
    }
    set_fast_path(true);

    let big = fp16_gemm(GemmShape::new(8192, 8192, 8192), GemmConfig::default()).unwrap();
    let big_compiled = Compiler::new(arch.clone()).compile(&big).unwrap();
    c.bench_function("sim/perf_estimate_gemm_8192", |b| {
        b.iter(|| {
            estimate_kernel(
                black_box(&big_compiled.program),
                &big_compiled.candidate,
                &arch,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_simulation
}
criterion_main!(benches);
