//! # hexcute-sim
//!
//! Functional and performance simulation of synthesized Hexcute kernels.
//!
//! The paper evaluates generated CUDA kernels on A100/H100 GPUs; this
//! reproduction substitutes a simulator (documented in `DESIGN.md`):
//!
//! * [`FunctionalSim`] executes one thread block of a synthesized program
//!   element by element, using the synthesized thread-value layouts, shared
//!   memory layouts and swizzles verbatim. Incorrect or inconsistent layouts
//!   produce numerically wrong results, so reference comparisons in the test
//!   suite validate the "correct by construction" claim.
//! * [`estimate_kernel`] models the device-level latency of a launch: the
//!   per-block instruction timeline (via the analytical cost model), shared
//!   memory bank conflicts, occupancy and wave quantization across SMs, DRAM
//!   and Tensor-Core rooflines, and kernel-launch overhead.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod functional;
mod perf;

pub use error::{Result, SimError};
pub use functional::{quantize, FunctionalSim, SimTableCache};
pub use perf::{
    bank_conflict_penalty, estimate_kernel, estimate_sequence, global_memory_efficiency,
    PerfEvaluator, PerfReport,
};
