//! Error type for the simulators.

use std::fmt;

/// Errors produced by the functional or performance simulators.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A register tensor has no synthesized thread-value layout.
    MissingLayout(String),
    /// An input buffer is smaller than the global view requires.
    ShortBuffer {
        /// Tensor name.
        tensor: String,
        /// Required number of elements.
        required: usize,
        /// Provided number of elements.
        provided: usize,
    },
    /// The program uses a feature the simulator does not model.
    Unsupported(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingLayout(name) => write!(f, "tensor {name} has no synthesized layout"),
            SimError::ShortBuffer {
                tensor,
                required,
                provided,
            } => write!(
                f,
                "buffer for {tensor} has {provided} elements but the view requires {required}"
            ),
            SimError::Unsupported(what) => write!(f, "unsupported by the simulator: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, SimError>;
