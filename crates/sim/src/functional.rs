//! The functional simulator: executes a synthesized program element by
//! element using the synthesized layouts, so that an incorrect layout (or an
//! inconsistent pair of layouts) produces wrong numerical results instead of
//! silently "working".
//!
//! This is the correctness backstop of the reproduction: the paper's claim
//! that layout synthesis is "correct by construction" is checked here by
//! compiling kernels and comparing their simulated output against reference
//! implementations.
//!
//! ## Table-driven fast path
//!
//! Evaluating the layout index function per element is expensive: every
//! `tile_coords` / `address` call walks hierarchical tuples and allocates.
//! When the flat fast path is enabled (see [`hexcute_layout::fastpath`]),
//! the simulator instead precomputes per-operation **index tables** once —
//! for each `(thread, value)` pair the source and destination addresses,
//! with the main-loop iteration folded in as a single additive offset — and
//! the inner loops become straight array indexing. The reference
//! element-by-element path is kept and used when the fast path is disabled;
//! both paths produce bit-identical buffers.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use hexcute_arch::{DType, MemSpace};
use hexcute_ir::{ElementwiseOp, Op, OpId, OpKind, Program, ReduceOp, TensorId};
use hexcute_layout::{fastpath, Layout, Swizzle, SwizzledLayout, TvLayout};
use hexcute_parallel::cache::{CacheStats, ShardedMap};
use hexcute_parallel::lossy::{self, LossyPurpose};
use hexcute_synthesis::Candidate;

use crate::error::{Result, SimError};

/// The functional simulator for one thread block of a synthesized program.
#[derive(Debug)]
pub struct FunctionalSim<'a> {
    program: &'a Program,
    candidate: &'a Candidate,
}

/// Register file of one tensor: `values[thread * values_per_thread + value]`.
#[derive(Debug, Clone)]
struct RegisterFile {
    threads: usize,
    values_per_thread: usize,
    data: Vec<f32>,
}

impl RegisterFile {
    fn new(threads: usize, values_per_thread: usize) -> Self {
        RegisterFile {
            threads,
            values_per_thread,
            data: vec![0.0; threads * values_per_thread],
        }
    }

    fn get(&self, t: usize, v: usize) -> f32 {
        self.data[t * self.values_per_thread + v]
    }

    fn set(&mut self, t: usize, v: usize, x: f32) {
        self.data[t * self.values_per_thread + v] = x;
    }
}

/// Rounds a value to the precision of the given data type (used by `cast`).
pub fn quantize(dtype: DType, x: f32) -> f32 {
    match dtype {
        DType::F64 | DType::F32 => x,
        DType::F16 => truncate_mantissa(x, 13),
        DType::BF16 => truncate_mantissa(x, 16),
        DType::F8E4M3 => truncate_mantissa(x, 20).clamp(-448.0, 448.0),
        DType::F8E5M2 => truncate_mantissa(x, 21).clamp(-57344.0, 57344.0),
        _ => {
            let (lo, hi) = dtype.integer_range().unwrap_or((i64::MIN, i64::MAX));
            (x.round() as i64).clamp(lo, hi) as f32
        }
    }
}

fn truncate_mantissa(x: f32, dropped_bits: u32) -> f32 {
    if !x.is_finite() || x == 0.0 {
        return x;
    }
    let bits = x.to_bits();
    let round = 1u32 << (dropped_bits - 1);
    let mask = !((1u32 << dropped_bits) - 1);
    f32::from_bits(bits.wrapping_add(round) & mask)
}

// ---------------------------------------------------------------------------
// Precomputed index tables (the fast path).
// ---------------------------------------------------------------------------

/// The per-iteration part of an address: the leaf extents and strides of the
/// memory-layout dimensions beyond the tile coordinates. Those dimensions all
/// carry the loop iteration as their coordinate, so their contribution is one
/// offset shared by every element of the tile.
#[derive(Debug, Clone)]
struct IterPart {
    dims: Vec<(Vec<usize>, Vec<usize>)>,
}

impl IterPart {
    fn offset(&self, iteration: usize) -> usize {
        let mut acc = 0usize;
        for (extents, strides) in &self.dims {
            acc += dim_contribution(extents, strides, iteration);
        }
        acc
    }
}

/// Splits a per-dimension coordinate over that dimension's leaves and dots it
/// with the leaf strides, exactly like the reference `address` computation.
fn dim_contribution(extents: &[usize], strides: &[usize], coord: usize) -> usize {
    let mut rest = coord;
    let mut acc = 0usize;
    for (i, (&extent, &stride)) in extents.iter().zip(strides.iter()).enumerate() {
        if i + 1 == extents.len() {
            acc += rest * stride;
        } else {
            acc += (rest % extent) * stride;
            rest /= extent;
        }
    }
    acc
}

/// One side (source or destination) of a precomputed copy table.
#[derive(Debug)]
enum SideTable {
    /// Register side: addressed directly by `(thread, value)`.
    Register,
    /// Global side: `address = base[i] + iter.offset(iteration)`.
    Global { base: Vec<usize>, iter: IterPart },
    /// Shared side: `address = swizzle(base[i] + iter.offset(iteration))`.
    Shared {
        base: Vec<usize>,
        swizzle: Swizzle,
        iter: IterPart,
    },
}

/// The precomputed address tables of one copy operation.
#[derive(Debug)]
struct CopyTable {
    threads: usize,
    values: usize,
    src: SideTable,
    dst: SideTable,
}

/// The `(thread, value) → tile linear index` table of one register tensor.
#[derive(Debug)]
struct TvTable {
    threads: usize,
    values: usize,
    index: Vec<usize>,
}

/// Default bound on resident tables per table kind: index tables are big
/// (one `usize` per element side), so a long-lived shared cache is capped
/// with simple shard eviction instead of growing with every candidate it
/// ever simulated. Evicted tables are rebuilt on demand, bit-identically.
const TABLE_CACHE_CAPACITY: usize = 1024;

/// Precomputed index tables keyed by content fingerprints, so one cache can
/// be shared across *sibling candidates* of the same program: the search
/// tree varies one instruction choice at a time, and an operation whose
/// choice (and touched layouts) is unchanged between candidates reuses its
/// tables instead of rebuilding them — the functional-simulation analogue of
/// the prefix-shared search (`hexcute_synthesis::prefix`).
///
/// The maps are sharded behind read-write locks, so one cache can also be
/// shared across *threads* simulating sibling candidates concurrently; every
/// table is a pure function of its fingerprint key, so concurrent use is
/// bit-identical to private caches. Growth is bounded (see
/// [`SimTableCache::with_capacity`]).
///
/// [`FunctionalSim::run`] uses a private cache per run; pass a long-lived
/// cache to [`FunctionalSim::run_with_cache`] to share tables across runs
/// and candidates. Results are bit-identical either way.
#[derive(Debug)]
pub struct SimTableCache {
    copy: ShardedMap<(OpId, u64), Arc<CopyTable>>,
    tv: ShardedMap<(TensorId, u64), Arc<TvTable>>,
    shared_gather: ShardedMap<(TensorId, u64), Arc<Vec<usize>>>,
    /// Process-unique salt mixed into every lossy-tier key: the thread-local
    /// lossy tables in front of these maps outlive this cache, and a table
    /// entry of one cache instance must never be served to another.
    salt: u64,
}

impl Default for SimTableCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SimTableCache {
    /// An empty cache with the default capacity bound.
    pub fn new() -> Self {
        Self::with_capacity(TABLE_CACHE_CAPACITY)
    }

    /// An empty cache holding at most roughly `capacity` tables of each kind
    /// (copy / thread-value / gather); over-full shards are cleared and the
    /// evicted tables rebuilt on demand.
    pub fn with_capacity(capacity: usize) -> Self {
        SimTableCache {
            copy: ShardedMap::bounded(capacity),
            tv: ShardedMap::bounded(capacity),
            shared_gather: ShardedMap::bounded(capacity),
            salt: lossy::instance_salt(),
        }
    }

    /// Number of cached tables (copy + thread-value + gather).
    pub fn len(&self) -> usize {
        self.copy.len() + self.tv.len() + self.shared_gather.len()
    }

    /// Whether the cache holds no tables.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Combined hit/miss/eviction counters across the three table kinds.
    pub fn stats(&self) -> CacheStats {
        self.copy
            .stats()
            .merged(&self.tv.stats())
            .merged(&self.shared_gather.stats())
    }
}

/// Per-run state: the fingerprints resolved once per operation/tensor for
/// this candidate (so inner loops don't re-hash layouts per iteration) and
/// the reusable scratch buffer.
#[derive(Debug, Default)]
struct RunState {
    copy_fp: HashMap<OpId, u64>,
    tv_fp: HashMap<TensorId, u64>,
    gather_fp: HashMap<TensorId, u64>,
    scratch: Vec<f32>,
}

fn base_and_iter(layout: &Layout, coords_list: &[Vec<usize>]) -> (Vec<usize>, IterPart) {
    let rank = layout.rank();
    let coords_len = coords_list.first().map(Vec::len).unwrap_or(0);
    let used = rank.min(coords_len);
    let dims: Vec<(Vec<usize>, Vec<usize>)> = (0..rank)
        .map(|d| {
            (
                layout.shape().mode(d).flatten(),
                layout.stride().mode(d).flatten(),
            )
        })
        .collect();
    let base = coords_list
        .iter()
        .map(|coords| {
            let mut acc = 0usize;
            for (d, (extents, strides)) in dims.iter().enumerate().take(used) {
                acc += dim_contribution(extents, strides, coords[d]);
            }
            acc
        })
        .collect();
    (
        base,
        IterPart {
            dims: dims[used..].to_vec(),
        },
    )
}

impl<'a> FunctionalSim<'a> {
    /// Creates a simulator for the program and candidate.
    pub fn new(program: &'a Program, candidate: &'a Candidate) -> Self {
        FunctionalSim { program, candidate }
    }

    /// Runs one thread block of the kernel. `inputs` maps global-tensor names
    /// to flat buffers indexed by the addresses the tensor's layout produces;
    /// the returned map contains the final contents of every global buffer.
    ///
    /// # Errors
    ///
    /// Returns an error when a register tensor lacks a synthesized layout or
    /// an input buffer is too small.
    pub fn run(&self, inputs: &HashMap<String, Vec<f32>>) -> Result<HashMap<String, Vec<f32>>> {
        let cache = SimTableCache::new();
        self.run_with_cache(inputs, &cache)
    }

    /// Like [`FunctionalSim::run`], but reusing `cache` across calls — and
    /// across *sibling candidates* of the same program: tables are keyed by
    /// content fingerprints of the instruction choice and the layouts it
    /// touches, so a candidate re-simulates only the operations its differing
    /// choice suffix changed. Results are bit-identical to [`FunctionalSim::run`].
    ///
    /// # Errors
    ///
    /// Same as [`FunctionalSim::run`].
    pub fn run_with_cache(
        &self,
        inputs: &HashMap<String, Vec<f32>>,
        cache: &SimTableCache,
    ) -> Result<HashMap<String, Vec<f32>>> {
        let threads = self.program.threads_per_block;

        // Global buffers.
        let mut global: HashMap<TensorId, Vec<f32>> = HashMap::new();
        for decl in self.program.tensors() {
            if decl.space != MemSpace::Global {
                continue;
            }
            let layout = decl
                .global_layout
                .as_ref()
                .expect("global views carry layouts");
            let required = layout.cosize();
            let buffer = match inputs.get(&decl.name) {
                Some(data) => {
                    if data.len() < required {
                        return Err(SimError::ShortBuffer {
                            tensor: decl.name.clone(),
                            required,
                            provided: data.len(),
                        });
                    }
                    data.clone()
                }
                None => vec![0.0; required],
            };
            global.insert(decl.id, buffer);
        }

        // Shared-memory buffers.
        let mut shared: HashMap<TensorId, Vec<f32>> = HashMap::new();
        for &id in &self.program.shared_tensors() {
            let layout = self.smem_layout(id);
            let size = layout.layout().cosize().next_power_of_two();
            shared.insert(id, vec![0.0; size]);
        }

        // Register files.
        let mut regs: HashMap<TensorId, RegisterFile> = HashMap::new();
        for decl in self.program.tensors() {
            if decl.space != MemSpace::Register {
                continue;
            }
            let tv = self
                .candidate
                .tv_layouts
                .get(&decl.id)
                .ok_or_else(|| SimError::MissingLayout(decl.name.clone()))?;
            regs.insert(
                decl.id,
                RegisterFile::new(tv.num_threads().max(threads), tv.values_per_thread()),
            );
        }

        // Per-run fingerprint resolutions and scratch; the index tables
        // themselves live in `cache` and may outlive this run.
        let mut state = RunState::default();

        // Execution order: pre-loop ops, the loop, post-loop ops.
        let first_loop = self.program.ops().iter().position(|o| o.in_main_loop);
        let last_loop = self.program.ops().iter().rposition(|o| o.in_main_loop);
        let ops = self.program.ops();
        match (first_loop, last_loop) {
            (Some(first), Some(last)) => {
                for op in &ops[..first] {
                    self.execute(
                        op,
                        0,
                        &mut global,
                        &mut shared,
                        &mut regs,
                        cache,
                        &mut state,
                    )?;
                }
                for iteration in 0..self.program.main_loop_trip_count {
                    for op in &ops[first..=last] {
                        if op.in_main_loop {
                            self.execute(
                                op,
                                iteration,
                                &mut global,
                                &mut shared,
                                &mut regs,
                                cache,
                                &mut state,
                            )?;
                        }
                    }
                }
                for op in &ops[last + 1..] {
                    self.execute(
                        op,
                        0,
                        &mut global,
                        &mut shared,
                        &mut regs,
                        cache,
                        &mut state,
                    )?;
                }
            }
            _ => {
                for op in ops {
                    self.execute(
                        op,
                        0,
                        &mut global,
                        &mut shared,
                        &mut regs,
                        cache,
                        &mut state,
                    )?;
                }
            }
        }

        let mut outputs = HashMap::new();
        for decl in self.program.tensors() {
            if decl.space == MemSpace::Global {
                outputs.insert(
                    decl.name.clone(),
                    global.remove(&decl.id).unwrap_or_default(),
                );
            }
        }
        Ok(outputs)
    }

    fn smem_layout(&self, id: TensorId) -> SwizzledLayout {
        self.candidate
            .smem_layouts
            .get(&id)
            .cloned()
            .unwrap_or_else(|| {
                SwizzledLayout::unswizzled(Layout::row_major(
                    &self.program.tensor(id).tile_shape_2d(),
                ))
            })
    }

    #[allow(clippy::too_many_arguments)]
    fn execute(
        &self,
        op: &Op,
        iteration: usize,
        global: &mut HashMap<TensorId, Vec<f32>>,
        shared: &mut HashMap<TensorId, Vec<f32>>,
        regs: &mut HashMap<TensorId, RegisterFile>,
        cache: &SimTableCache,
        state: &mut RunState,
    ) -> Result<()> {
        match &op.kind {
            OpKind::Copy { src, dst } => self.execute_copy(
                op, *src, *dst, iteration, global, shared, regs, cache, state,
            ),
            OpKind::Gemm { c, a, b } => self.execute_gemm(*c, *a, *b, shared, regs, cache, state),
            OpKind::Cast { src, dst } => {
                let dtype = self.program.tensor(*dst).dtype;
                let src_file = regs.get(src).cloned().ok_or_else(|| self.missing(*src))?;
                let dst_file = regs.get_mut(dst).ok_or_else(|| self.missing(*dst))?;
                for t in 0..dst_file.threads.min(src_file.threads) {
                    for v in 0..dst_file.values_per_thread.min(src_file.values_per_thread) {
                        dst_file.set(t, v, quantize(dtype, src_file.get(t, v)));
                    }
                }
                Ok(())
            }
            OpKind::Rearrange { src, dst } => self.redistribute(*src, *dst, regs, cache, state),
            OpKind::Elementwise {
                inputs,
                output,
                op: eop,
            } => self.execute_elementwise(inputs, *output, *eop, regs),
            OpKind::Reduce {
                src,
                dst,
                dim,
                op: rop,
            } => self.execute_reduce(*src, *dst, *dim, *rop, regs, cache, state),
            OpKind::Fill { dst, value } => {
                let file = regs.get_mut(dst).ok_or_else(|| self.missing(*dst))?;
                file.data.iter_mut().for_each(|x| *x = *value as f32);
                Ok(())
            }
            OpKind::Dequant {
                src,
                scale,
                zero,
                dst,
                group_size,
            } => self.execute_dequant(*src, *scale, *zero, *dst, *group_size, regs, cache, state),
        }
    }

    /// `dst[r, c] = (src[r, c] - zero[r, g]) * scale[r, g]` with
    /// `g = min(c / group_size, groups - 1)` (the last group serves the
    /// tail when `group_size` does not divide the K extent), quantized to
    /// the destination element type.
    #[allow(clippy::too_many_arguments)]
    fn execute_dequant(
        &self,
        src: TensorId,
        scale: TensorId,
        zero: Option<TensorId>,
        dst: TensorId,
        group_size: usize,
        regs: &mut HashMap<TensorId, RegisterFile>,
        cache: &SimTableCache,
        state: &mut RunState,
    ) -> Result<()> {
        let shared_dummy = HashMap::new();
        let (tile, src_full) = self.gather_tile(src, &shared_dummy, regs, cache, state)?;
        let (scale_tile, scale_full) =
            self.gather_tile(scale, &shared_dummy, regs, cache, state)?;
        let zero_full = match zero {
            Some(z) => Some(self.gather_tile(z, &shared_dummy, regs, cache, state)?.1),
            None => None,
        };
        let dtype = self.program.tensor(dst).dtype;
        let (rows, cols) = (tile[0], tile.get(1).copied().unwrap_or(1));
        let groups = scale_tile.get(1).copied().unwrap_or(1).max(1);
        let mut out = vec![0.0f32; rows * cols];
        for c in 0..cols {
            let g = (c / group_size.max(1)).min(groups - 1);
            for r in 0..rows {
                // Tiles are linearized column-major (idx = r + rows * c).
                let q = src_full[r + rows * c];
                let s = scale_full[r + rows * g];
                let z = zero_full.as_ref().map(|zf| zf[r + rows * g]).unwrap_or(0.0);
                out[r + rows * c] = quantize(dtype, (q - z) * s);
            }
        }
        self.scatter_tile(dst, &out, regs, cache, state)
    }

    fn missing(&self, id: TensorId) -> SimError {
        SimError::MissingLayout(self.program.tensor(id).name.clone())
    }

    /// Maps 2-D tile coordinates to an address through a (possibly
    /// hierarchical, possibly higher-rank) memory layout, appending the loop
    /// iteration as the trailing coordinate when the layout has more
    /// dimensions than the tile.
    fn address(&self, layout: &Layout, coords: &[usize], iteration: usize) -> usize {
        let rank = layout.rank();
        let mut per_dim: Vec<usize> = coords.to_vec();
        per_dim.truncate(rank);
        while per_dim.len() < rank {
            per_dim.push(iteration);
        }
        // Split each per-dimension coordinate over that dimension's leaves.
        let mut leaf_coords = Vec::new();
        for (d, &c) in per_dim.iter().enumerate() {
            let extents = layout.shape().mode(d).flatten();
            let mut rest = c;
            for (i, &extent) in extents.iter().enumerate() {
                if i + 1 == extents.len() {
                    leaf_coords.push(rest);
                } else {
                    leaf_coords.push(rest % extent);
                    rest /= extent;
                }
            }
        }
        layout.map_coords(&leaf_coords)
    }

    /// The thread-value layout a copy walks: destination-register copies
    /// follow the destination's layout so that every register value is
    /// written; all other copies follow the coverage layout recorded for the
    /// operation.
    fn copy_walk(&self, op: &Op, src: TensorId, dst: TensorId) -> Result<TvLayout> {
        let (s_decl, d_decl) = (self.program.tensor(src), self.program.tensor(dst));
        let coverage = self
            .candidate
            .copy_choices
            .get(&op.id)
            .map(|c| c.coverage.clone())
            .or_else(|| self.candidate.tv_layouts.get(&dst).cloned())
            .or_else(|| self.candidate.tv_layouts.get(&src).cloned())
            .ok_or_else(|| self.missing(dst))?;
        if d_decl.space == MemSpace::Register {
            self.candidate
                .tv_layouts
                .get(&dst)
                .cloned()
                .ok_or_else(|| self.missing(dst))
        } else if s_decl.space == MemSpace::Register {
            self.candidate
                .tv_layouts
                .get(&src)
                .cloned()
                .ok_or_else(|| self.missing(src))
        } else {
            Ok(coverage)
        }
    }

    /// Mixes the layout-relevant parts of a swizzled layout into `hasher`.
    fn hash_swizzled(layout: &SwizzledLayout, hasher: &mut DefaultHasher) {
        layout.layout().hash(hasher);
        let swizzle = layout.swizzle();
        swizzle.bits().hash(hasher);
        swizzle.base().hash(hasher);
        swizzle.shift().hash(hasher);
    }

    /// Content fingerprint of a copy's index tables: the walked thread-value
    /// layout and the memory layouts of both sides — exactly the inputs
    /// `build_copy_table` reads. Returns the walk alongside the hash so a
    /// cache miss can build the table without re-deriving it.
    fn copy_fingerprint(&self, op: &Op, src: TensorId, dst: TensorId) -> Result<(u64, TvLayout)> {
        let walk = self.copy_walk(op, src, dst)?;
        let mut hasher = DefaultHasher::new();
        self.program.name.hash(&mut hasher);
        walk.hash(&mut hasher);
        for id in [src, dst] {
            let decl = self.program.tensor(id);
            std::mem::discriminant(&decl.space).hash(&mut hasher);
            match decl.space {
                MemSpace::Global => {
                    decl.global_layout
                        .as_ref()
                        .expect("global views carry layouts")
                        .hash(&mut hasher);
                }
                MemSpace::Shared => Self::hash_swizzled(&self.smem_layout(id), &mut hasher),
                MemSpace::Register => {}
            }
        }
        Ok((hasher.finish(), walk))
    }

    fn build_copy_table(&self, src: TensorId, dst: TensorId, walk: &TvLayout) -> CopyTable {
        let threads = walk.num_threads();
        let values = walk.values_per_thread();
        let mut coords_list = Vec::with_capacity(threads * values);
        for t in 0..threads {
            for v in 0..values {
                coords_list.push(walk.tile_coords(t, v));
            }
        }
        let side = |id: TensorId| -> SideTable {
            let decl = self.program.tensor(id);
            match decl.space {
                MemSpace::Register => SideTable::Register,
                MemSpace::Global => {
                    let layout = decl
                        .global_layout
                        .as_ref()
                        .expect("global views carry layouts");
                    let (base, iter) = base_and_iter(layout, &coords_list);
                    SideTable::Global { base, iter }
                }
                MemSpace::Shared => {
                    let swizzled = self.smem_layout(id);
                    let (base, iter) = base_and_iter(swizzled.layout(), &coords_list);
                    SideTable::Shared {
                        base,
                        swizzle: *swizzled.swizzle(),
                        iter,
                    }
                }
            }
        };
        CopyTable {
            threads,
            values,
            src: side(src),
            dst: side(dst),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_copy(
        &self,
        op: &Op,
        src: TensorId,
        dst: TensorId,
        iteration: usize,
        global: &mut HashMap<TensorId, Vec<f32>>,
        shared: &mut HashMap<TensorId, Vec<f32>>,
        regs: &mut HashMap<TensorId, RegisterFile>,
        cache: &SimTableCache,
        state: &mut RunState,
    ) -> Result<()> {
        if !fastpath::enabled() {
            return self.execute_copy_reference(op, src, dst, iteration, global, shared, regs);
        }
        let table = match state.copy_fp.get(&op.id) {
            // A fingerprint already resolved this run: probe the lossy
            // thread-local tier, then the shared tier. Either may have lost
            // the table (direct-mapped eviction / bounded-shard clear) —
            // rebuild (bit-identically) in that case. The rebuild is fallible
            // (`copy_walk`), so this site uses the probe/backfill halves
            // instead of the closure-style memo front.
            Some(&fp) => {
                let key = (op.id, fp);
                let tag = lossy::mix(op.id.index() as u64, fp);
                match lossy::probe(LossyPurpose::SimCopy, cache.salt, tag, &key) {
                    Some(table) => table,
                    None => {
                        let table = match cache.copy.get(&key) {
                            Some(table) => table,
                            None => {
                                let walk = self.copy_walk(op, src, dst)?;
                                let table = Arc::new(self.build_copy_table(src, dst, &walk));
                                cache.copy.insert(key, table.clone());
                                table
                            }
                        };
                        lossy::backfill(LossyPurpose::SimCopy, cache.salt, tag, key, table.clone());
                        table
                    }
                }
            }
            None => {
                let (fp, walk) = self.copy_fingerprint(op, src, dst)?;
                state.copy_fp.insert(op.id, fp);
                lossy::two_tier_get_or_insert_with(
                    LossyPurpose::SimCopy,
                    cache.salt,
                    lossy::mix(op.id.index() as u64, fp),
                    &cache.copy,
                    (op.id, fp),
                    || Arc::new(self.build_copy_table(src, dst, &walk)),
                )
            }
        };
        let table = &*table;
        let n = table.threads * table.values;

        // Pass 1: read every source element into the scratch buffer. Source
        // and destination tensors are always distinct, so snapshotting reads
        // matches the reference's interleaved read/write order.
        let mut scratch = std::mem::take(&mut state.scratch);
        scratch.clear();
        scratch.reserve(n);
        match &table.src {
            SideTable::Register => {
                let file = regs.get(&src).ok_or_else(|| self.missing(src))?;
                for t in 0..table.threads {
                    for v in 0..table.values {
                        scratch.push(file.get(t, v));
                    }
                }
            }
            SideTable::Global { base, iter } => {
                let off = iter.offset(iteration);
                let buf = &global[&src];
                for &b in base {
                    scratch.push(buf.get(b + off).copied().unwrap_or(0.0));
                }
            }
            SideTable::Shared {
                base,
                swizzle,
                iter,
            } => {
                let off = iter.offset(iteration);
                let buf = &shared[&src];
                for &b in base {
                    scratch.push(buf[swizzle.apply(b + off)]);
                }
            }
        }

        // Pass 2: write every element to the destination.
        match &table.dst {
            SideTable::Register => {
                if let Some(file) = regs.get_mut(&dst) {
                    for t in 0..table.threads {
                        for v in 0..table.values {
                            file.set(t, v, scratch[t * table.values + v]);
                        }
                    }
                }
            }
            SideTable::Global { base, iter } => {
                let off = iter.offset(iteration);
                if let Some(buf) = global.get_mut(&dst) {
                    for (i, &b) in base.iter().enumerate() {
                        if let Some(slot) = buf.get_mut(b + off) {
                            *slot = scratch[i];
                        }
                    }
                }
            }
            SideTable::Shared {
                base,
                swizzle,
                iter,
            } => {
                let off = iter.offset(iteration);
                if let Some(buf) = shared.get_mut(&dst) {
                    for (i, &b) in base.iter().enumerate() {
                        let addr = swizzle.apply(b + off);
                        if let Some(slot) = buf.get_mut(addr) {
                            *slot = scratch[i];
                        }
                    }
                }
            }
        }
        state.scratch = scratch;
        Ok(())
    }

    /// The reference element-by-element copy, evaluating the layout index
    /// function per element.
    #[allow(clippy::too_many_arguments)]
    fn execute_copy_reference(
        &self,
        op: &Op,
        src: TensorId,
        dst: TensorId,
        iteration: usize,
        global: &mut HashMap<TensorId, Vec<f32>>,
        shared: &mut HashMap<TensorId, Vec<f32>>,
        regs: &mut HashMap<TensorId, RegisterFile>,
    ) -> Result<()> {
        let s_decl = self.program.tensor(src);
        let d_decl = self.program.tensor(dst);

        let read = |coords: &[usize],
                    global: &HashMap<TensorId, Vec<f32>>,
                    shared: &HashMap<TensorId, Vec<f32>>,
                    regs: &HashMap<TensorId, RegisterFile>,
                    t: usize,
                    v: usize|
         -> f32 {
            match s_decl.space {
                MemSpace::Global => {
                    let layout = s_decl.global_layout.as_ref().unwrap();
                    let addr = self.address(layout, coords, iteration);
                    global[&src].get(addr).copied().unwrap_or(0.0)
                }
                MemSpace::Shared => {
                    let layout = self.smem_layout(src);
                    let base = self.address(layout.layout(), coords, iteration);
                    shared[&src][layout.swizzle().apply(base)]
                }
                MemSpace::Register => regs[&src].get(t, v),
            }
        };

        let walk = self.copy_walk(op, src, dst)?;
        for t in 0..walk.num_threads() {
            for v in 0..walk.values_per_thread() {
                let coords = walk.tile_coords(t, v);
                let value = read(&coords, global, shared, regs, t, v);
                match d_decl.space {
                    MemSpace::Global => {
                        let layout = d_decl.global_layout.as_ref().unwrap();
                        let addr = self.address(layout, &coords, iteration);
                        if let Some(slot) = global.get_mut(&dst).and_then(|b| b.get_mut(addr)) {
                            *slot = value;
                        }
                    }
                    MemSpace::Shared => {
                        let layout = self.smem_layout(dst);
                        let addr = layout.swizzle().apply(self.address(
                            layout.layout(),
                            &coords,
                            iteration,
                        ));
                        if let Some(slot) = shared.get_mut(&dst).and_then(|b| b.get_mut(addr)) {
                            *slot = value;
                        }
                    }
                    MemSpace::Register => {
                        if let Some(file) = regs.get_mut(&dst) {
                            file.set(t, v, value);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn tv_table(
        &self,
        id: TensorId,
        cache: &SimTableCache,
        state: &mut RunState,
    ) -> Result<Arc<TvTable>> {
        let tv = self
            .candidate
            .tv_layouts
            .get(&id)
            .ok_or_else(|| self.missing(id))?;
        let fp = match state.tv_fp.get(&id) {
            Some(&fp) => fp,
            None => {
                let mut hasher = DefaultHasher::new();
                self.program.name.hash(&mut hasher);
                tv.hash(&mut hasher);
                let fp = hasher.finish();
                state.tv_fp.insert(id, fp);
                fp
            }
        };
        Ok(lossy::two_tier_get_or_insert_with(
            LossyPurpose::SimTv,
            cache.salt,
            lossy::mix(id.index() as u64, fp),
            &cache.tv,
            (id, fp),
            || {
                let threads = tv.num_threads();
                let values = tv.values_per_thread();
                let mut index = Vec::with_capacity(threads * values);
                for t in 0..threads {
                    for v in 0..values {
                        index.push(tv.map(t, v));
                    }
                }
                Arc::new(TvTable {
                    threads,
                    values,
                    index,
                })
            },
        ))
    }

    /// Gathers the full logical tile of a tensor (register or shared).
    fn gather_tile(
        &self,
        id: TensorId,
        shared: &HashMap<TensorId, Vec<f32>>,
        regs: &HashMap<TensorId, RegisterFile>,
        cache: &SimTableCache,
        state: &mut RunState,
    ) -> Result<(Vec<usize>, Vec<f32>)> {
        let decl = self.program.tensor(id);
        let tile = decl.tile_shape_2d();
        let total: usize = tile.iter().product();
        let mut full = vec![0.0f32; total];
        let fast = fastpath::enabled();
        match decl.space {
            MemSpace::Register => {
                if fast {
                    let file = regs.get(&id).ok_or_else(|| self.missing(id))?;
                    let table = self.tv_table(id, cache, state)?;
                    for t in 0..table.threads {
                        for v in 0..table.values {
                            let i = t * table.values + v;
                            let idx = table.index[i];
                            if idx < total {
                                full[idx] = file.get(t, v);
                            }
                        }
                    }
                } else {
                    let tv = self
                        .candidate
                        .tv_layouts
                        .get(&id)
                        .ok_or_else(|| self.missing(id))?;
                    let file = regs.get(&id).ok_or_else(|| self.missing(id))?;
                    for t in 0..tv.num_threads() {
                        for v in 0..tv.values_per_thread() {
                            let idx = tv.map(t, v);
                            if idx < total {
                                full[idx] = file.get(t, v);
                            }
                        }
                    }
                }
            }
            MemSpace::Shared => {
                let buffer = shared.get(&id).ok_or_else(|| self.missing(id))?;
                if fast {
                    let fp = match state.gather_fp.get(&id) {
                        Some(&fp) => fp,
                        None => {
                            let mut hasher = DefaultHasher::new();
                            self.program.name.hash(&mut hasher);
                            Self::hash_swizzled(&self.smem_layout(id), &mut hasher);
                            let fp = hasher.finish();
                            state.gather_fp.insert(id, fp);
                            fp
                        }
                    };
                    let addrs = lossy::two_tier_get_or_insert_with(
                        LossyPurpose::SimGather,
                        cache.salt,
                        lossy::mix(id.index() as u64, fp),
                        &cache.shared_gather,
                        (id, fp),
                        || {
                            let layout = self.smem_layout(id);
                            let addrs: Vec<usize> = (0..total)
                                .map(|idx| {
                                    let coords = [idx % tile[0], idx / tile[0]];
                                    layout.swizzle().apply(self.address(
                                        layout.layout(),
                                        &coords,
                                        0,
                                    ))
                                })
                                .collect();
                            Arc::new(addrs)
                        },
                    );
                    for (idx, &addr) in addrs.iter().enumerate() {
                        full[idx] = buffer.get(addr).copied().unwrap_or(0.0);
                    }
                } else {
                    let layout = self.smem_layout(id);
                    for (idx, slot) in full.iter_mut().enumerate() {
                        let coords = vec![idx % tile[0], idx / tile[0]];
                        let addr =
                            layout
                                .swizzle()
                                .apply(self.address(layout.layout(), &coords, 0));
                        *slot = buffer.get(addr).copied().unwrap_or(0.0);
                    }
                }
            }
            MemSpace::Global => {
                return Err(SimError::Unsupported(
                    "gathering a global view as a compute operand".to_string(),
                ))
            }
        }
        Ok((tile, full))
    }

    fn scatter_tile(
        &self,
        id: TensorId,
        full: &[f32],
        regs: &mut HashMap<TensorId, RegisterFile>,
        cache: &SimTableCache,
        state: &mut RunState,
    ) -> Result<()> {
        let decl = self.program.tensor(id);
        let total: usize = decl.tile_shape_2d().iter().product();
        if fastpath::enabled() {
            let table = self.tv_table(id, cache, state)?;
            let file = regs.get_mut(&id).ok_or_else(|| self.missing(id))?;
            for t in 0..table.threads {
                for v in 0..table.values {
                    let idx = table.index[t * table.values + v];
                    if idx < total {
                        file.set(t, v, full[idx]);
                    }
                }
            }
            return Ok(());
        }
        let tv = self
            .candidate
            .tv_layouts
            .get(&id)
            .ok_or_else(|| self.missing(id))?;
        let file = regs.get_mut(&id).ok_or_else(|| self.missing(id))?;
        for t in 0..tv.num_threads() {
            for v in 0..tv.values_per_thread() {
                let idx = tv.map(t, v);
                if idx < total {
                    file.set(t, v, full[idx]);
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_gemm(
        &self,
        c: TensorId,
        a: TensorId,
        b: TensorId,
        shared: &mut HashMap<TensorId, Vec<f32>>,
        regs: &mut HashMap<TensorId, RegisterFile>,
        cache: &SimTableCache,
        state: &mut RunState,
    ) -> Result<()> {
        let (a_tile, a_full) = self.gather_tile(a, shared, regs, cache, state)?;
        let (b_tile, b_full) = self.gather_tile(b, shared, regs, cache, state)?;
        let (c_tile, mut c_full) = self.gather_tile(c, shared, regs, cache, state)?;
        let (m, k) = (a_tile[0], a_tile[1]);
        let n = b_tile[0];
        debug_assert_eq!(c_tile, vec![m, n]);
        debug_assert_eq!(b_tile[1], k);
        for mi in 0..m {
            for ni in 0..n {
                let mut acc = 0.0f64;
                for ki in 0..k {
                    acc += f64::from(a_full[mi + m * ki]) * f64::from(b_full[ni + n * ki]);
                }
                c_full[mi + m * ni] += acc as f32;
            }
        }
        self.scatter_tile(c, &c_full, regs, cache, state)
    }

    fn redistribute(
        &self,
        src: TensorId,
        dst: TensorId,
        regs: &mut HashMap<TensorId, RegisterFile>,
        cache: &SimTableCache,
        state: &mut RunState,
    ) -> Result<()> {
        let shared_dummy = HashMap::new();
        let (_, full) = self.gather_tile(src, &shared_dummy, regs, cache, state)?;
        self.scatter_tile(dst, &full, regs, cache, state)
    }

    fn execute_elementwise(
        &self,
        inputs: &[TensorId],
        output: TensorId,
        op: ElementwiseOp,
        regs: &mut HashMap<TensorId, RegisterFile>,
    ) -> Result<()> {
        let input_files: Vec<RegisterFile> = inputs
            .iter()
            .map(|id| regs.get(id).cloned().ok_or_else(|| self.missing(*id)))
            .collect::<Result<_>>()?;
        let out = regs.get_mut(&output).ok_or_else(|| self.missing(output))?;
        let fetch = |file: &RegisterFile, t: usize, v: usize| -> f32 {
            file.get(t.min(file.threads - 1), v.min(file.values_per_thread - 1))
        };
        for t in 0..out.threads {
            for v in 0..out.values_per_thread {
                let x = input_files.first().map(|f| fetch(f, t, v)).unwrap_or(0.0);
                let y = input_files.get(1).map(|f| fetch(f, t, v)).unwrap_or(0.0);
                let z = input_files.get(2).map(|f| fetch(f, t, v)).unwrap_or(0.0);
                let r = match op {
                    ElementwiseOp::Add => x + y,
                    ElementwiseOp::Sub => x - y,
                    ElementwiseOp::Mul => x * y,
                    ElementwiseOp::Div => x / y,
                    ElementwiseOp::Max => x.max(y),
                    ElementwiseOp::Min => x.min(y),
                    ElementwiseOp::Exp => x.exp(),
                    ElementwiseOp::AddScalar(s) => x + s as f32,
                    ElementwiseOp::MulScalar(s) => x * s as f32,
                    ElementwiseOp::Relu => x.max(0.0),
                    ElementwiseOp::Silu => x / (1.0 + (-x).exp()),
                    ElementwiseOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
                    ElementwiseOp::Fma => x * y + z,
                    ElementwiseOp::Identity => x,
                };
                out.set(t, v, r);
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_reduce(
        &self,
        src: TensorId,
        dst: TensorId,
        dim: usize,
        op: ReduceOp,
        regs: &mut HashMap<TensorId, RegisterFile>,
        cache: &SimTableCache,
        state: &mut RunState,
    ) -> Result<()> {
        let shared_dummy = HashMap::new();
        let (tile, full) = self.gather_tile(src, &shared_dummy, regs, cache, state)?;
        let (rows, cols) = (tile[0], tile.get(1).copied().unwrap_or(1));
        let mut reduced_tile = tile.clone();
        reduced_tile[dim] = 1;
        let total: usize = reduced_tile.iter().product();
        let identity = match op {
            ReduceOp::Sum => 0.0f32,
            ReduceOp::Max => f32::NEG_INFINITY,
            ReduceOp::Min => f32::INFINITY,
        };
        let mut out = vec![identity; total];
        for r in 0..rows {
            for c in 0..cols {
                let value = full[r + rows * c];
                let idx = if dim == 0 { c } else { r };
                out[idx] = match op {
                    ReduceOp::Sum => out[idx] + value,
                    ReduceOp::Max => out[idx].max(value),
                    ReduceOp::Min => out[idx].min(value),
                };
            }
        }
        // Re-linearize into the destination tile's column-major order.
        let mut dst_full = vec![0.0f32; total];
        if dim == 0 {
            // reduced tile is (1, cols): index = 0 + 1 * c.
            dst_full[..total].copy_from_slice(&out[..total]);
        } else {
            // reduced tile is (rows, 1): index = r.
            dst_full[..total].copy_from_slice(&out[..total]);
        }
        self.scatter_tile(dst, &dst_full, regs, cache, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hexcute_arch::GpuArch;
    use hexcute_ir::KernelBuilder;
    use hexcute_synthesis::{SynthesisOptions, Synthesizer};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_vec(rng: &mut StdRng, n: usize) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn quantization_behaviour() {
        assert_eq!(quantize(DType::F32, 1.2345678), 1.2345678);
        assert!((quantize(DType::F16, 1.2345678) - 1.2345678).abs() < 1e-3);
        assert!((quantize(DType::BF16, 1.2345678) - 1.2345678).abs() < 1e-2);
        assert_eq!(quantize(DType::I4, 9.7), 7.0);
        assert_eq!(quantize(DType::I4, -9.7), -8.0);
        assert_eq!(quantize(DType::U4, 3.4), 3.0);
        assert_eq!(quantize(DType::F16, 0.0), 0.0);
    }

    #[test]
    fn copy_kernel_round_trips_through_shared_memory() {
        let mut kb = KernelBuilder::new("copy_roundtrip", 128);
        let src = kb.global_view("src", DType::F16, Layout::row_major(&[64, 64]), &[64, 64]);
        let dst = kb.global_view("dst", DType::F16, Layout::row_major(&[64, 64]), &[64, 64]);
        let stage = kb.shared_tensor("stage", DType::F16, &[64, 64]);
        let tile = kb.register_tensor("tile", DType::F16, &[64, 64]);
        kb.copy(src, stage);
        kb.copy(stage, tile);
        kb.copy(tile, dst);
        let program = kb.build().unwrap();
        let arch = GpuArch::a100();
        let candidate = Synthesizer::new(&program, &arch, SynthesisOptions::default())
            .synthesize_preferred()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let data = random_vec(&mut rng, 64 * 64);
        let mut inputs = HashMap::new();
        inputs.insert("src".to_string(), data.clone());
        let outputs = FunctionalSim::new(&program, &candidate)
            .run(&inputs)
            .unwrap();
        assert_eq!(outputs["dst"], data);
    }

    #[test]
    fn gemm_kernel_matches_reference_matmul() {
        let (m, n, k) = (64, 64, 64);
        let mut kb = KernelBuilder::new("gemm_check", 128);
        let ga = kb.global_view(
            "a",
            DType::F16,
            Layout::from_flat(&[m, k], &[k, 1]),
            &[m, k],
        );
        let gb = kb.global_view(
            "b",
            DType::F16,
            Layout::from_flat(&[n, k], &[k, 1]),
            &[n, k],
        );
        let gc = kb.global_view(
            "c",
            DType::F32,
            Layout::from_flat(&[m, n], &[n, 1]),
            &[m, n],
        );
        let sa = kb.shared_tensor("sa", DType::F16, &[m, k]);
        let sb = kb.shared_tensor("sb", DType::F16, &[n, k]);
        let ra = kb.register_tensor("ra", DType::F16, &[m, k]);
        let rb = kb.register_tensor("rb", DType::F16, &[n, k]);
        let rc = kb.register_tensor("rc", DType::F32, &[m, n]);
        kb.fill(rc, 0.0);
        kb.copy(ga, sa);
        kb.copy(gb, sb);
        kb.copy(sa, ra);
        kb.copy(sb, rb);
        kb.gemm(rc, ra, rb);
        kb.copy(rc, gc);
        let program = kb.build().unwrap();

        let arch = GpuArch::a100();
        let candidate = Synthesizer::new(&program, &arch, SynthesisOptions::default())
            .synthesize_preferred()
            .unwrap();

        let mut rng = StdRng::seed_from_u64(11);
        let a = random_vec(&mut rng, m * k);
        let b = random_vec(&mut rng, n * k);
        let mut inputs = HashMap::new();
        inputs.insert("a".to_string(), a.clone());
        inputs.insert("b".to_string(), b.clone());
        let outputs = FunctionalSim::new(&program, &candidate)
            .run(&inputs)
            .unwrap();
        let c = &outputs["c"];
        for mi in 0..m {
            for ni in 0..n {
                let mut expect = 0.0f64;
                for ki in 0..k {
                    expect += f64::from(a[mi * k + ki]) * f64::from(b[ni * k + ki]);
                }
                let got = c[mi * n + ni];
                assert!(
                    (f64::from(got) - expect).abs() < 1e-3,
                    "c[{mi},{ni}] = {got}, expected {expect}"
                );
            }
        }
    }

    #[test]
    fn table_driven_and_reference_paths_produce_identical_buffers() {
        let (m, n, k) = (64, 64, 32);
        let mut kb = KernelBuilder::new("fast_vs_ref", 128);
        let ga = kb.global_view(
            "a",
            DType::F16,
            Layout::from_flat(&[m, k], &[k, 1]),
            &[m, k],
        );
        let gb = kb.global_view(
            "b",
            DType::F16,
            Layout::from_flat(&[n, k], &[k, 1]),
            &[n, k],
        );
        let gc = kb.global_view(
            "c",
            DType::F32,
            Layout::from_flat(&[m, n], &[n, 1]),
            &[m, n],
        );
        let sa = kb.shared_tensor("sa", DType::F16, &[m, k]);
        let sb = kb.shared_tensor("sb", DType::F16, &[n, k]);
        let ra = kb.register_tensor("ra", DType::F16, &[m, k]);
        let rb = kb.register_tensor("rb", DType::F16, &[n, k]);
        let rc = kb.register_tensor("rc", DType::F32, &[m, n]);
        kb.fill(rc, 0.0);
        kb.copy(ga, sa);
        kb.copy(gb, sb);
        kb.copy(sa, ra);
        kb.copy(sb, rb);
        kb.gemm(rc, ra, rb);
        kb.copy(rc, gc);
        let program = kb.build().unwrap();
        let arch = GpuArch::a100();
        let candidate = Synthesizer::new(&program, &arch, SynthesisOptions::default())
            .synthesize_preferred()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut inputs = HashMap::new();
        inputs.insert("a".to_string(), random_vec(&mut rng, m * k));
        inputs.insert("b".to_string(), random_vec(&mut rng, n * k));

        let sim = FunctionalSim::new(&program, &candidate);
        let was_enabled = fastpath::enabled();
        fastpath::set_enabled(true);
        let fast = sim.run(&inputs).unwrap();
        fastpath::set_enabled(false);
        let reference = sim.run(&inputs).unwrap();
        fastpath::set_enabled(was_enabled);
        // Bit-for-bit identical, not just approximately equal.
        assert_eq!(fast.len(), reference.len());
        for (name, buf) in &fast {
            let ref_bits: Vec<u32> = reference[name].iter().map(|x| x.to_bits()).collect();
            let fast_bits: Vec<u32> = buf.iter().map(|x| x.to_bits()).collect();
            assert_eq!(fast_bits, ref_bits, "buffer {name} diverged");
        }
    }

    #[test]
    fn shared_table_cache_is_bit_identical_across_sibling_candidates() {
        let (m, n, k) = (64, 64, 32);
        let mut kb = KernelBuilder::new("siblings", 128);
        let ga = kb.global_view(
            "a",
            DType::F16,
            Layout::from_flat(&[m, k], &[k, 1]),
            &[m, k],
        );
        let gb = kb.global_view(
            "b",
            DType::F16,
            Layout::from_flat(&[n, k], &[k, 1]),
            &[n, k],
        );
        let gc = kb.global_view(
            "c",
            DType::F32,
            Layout::from_flat(&[m, n], &[n, 1]),
            &[m, n],
        );
        let sa = kb.shared_tensor("sa", DType::F16, &[m, k]);
        let sb = kb.shared_tensor("sb", DType::F16, &[n, k]);
        let ra = kb.register_tensor("ra", DType::F16, &[m, k]);
        let rb = kb.register_tensor("rb", DType::F16, &[n, k]);
        let rc = kb.register_tensor("rc", DType::F32, &[m, n]);
        kb.fill(rc, 0.0);
        kb.copy(ga, sa);
        kb.copy(gb, sb);
        kb.copy(sa, ra);
        kb.copy(sb, rb);
        kb.gemm(rc, ra, rb);
        kb.copy(rc, gc);
        let program = kb.build().unwrap();
        let arch = GpuArch::a100();
        let candidates = Synthesizer::new(&program, &arch, SynthesisOptions::default())
            .synthesize()
            .unwrap();
        assert!(candidates.len() > 1);
        let mut rng = StdRng::seed_from_u64(17);
        let mut inputs = HashMap::new();
        inputs.insert("a".to_string(), random_vec(&mut rng, m * k));
        inputs.insert("b".to_string(), random_vec(&mut rng, n * k));

        // One long-lived cache serves every sibling candidate; outputs must
        // equal the per-run-cache outputs bit for bit. Siblings sharing all
        // choices for an op reuse its tables, so the cache grows by less
        // than a full table set per candidate. Tables only exist on the fast
        // path, so force it on for the sharing measurement.
        let was_enabled = fastpath::enabled();
        fastpath::set_enabled(true);
        let cache = SimTableCache::new();
        let mut sizes = Vec::new();
        for candidate in &candidates {
            let sim = FunctionalSim::new(&program, candidate);
            let fresh = sim.run(&inputs).unwrap();
            let cached = sim.run_with_cache(&inputs, &cache).unwrap();
            for (name, buf) in &fresh {
                let fresh_bits: Vec<u32> = buf.iter().map(|x| x.to_bits()).collect();
                let cached_bits: Vec<u32> = cached[name].iter().map(|x| x.to_bits()).collect();
                assert_eq!(fresh_bits, cached_bits, "buffer {name} diverged");
            }
            sizes.push(cache.len());
        }
        fastpath::set_enabled(was_enabled);
        let first = sizes[0];
        let last = *sizes.last().unwrap();
        assert!(first > 0, "the fast path built no tables at all: {sizes:?}");
        assert!(
            last < first * candidates.len(),
            "no table sharing across siblings: {sizes:?}"
        );
    }

    #[test]
    fn reduce_and_elementwise_semantics() {
        let mut kb = KernelBuilder::new("softmax_row", 128);
        let gx = kb.global_view(
            "x",
            DType::F32,
            Layout::from_flat(&[32, 64], &[64, 1]),
            &[32, 64],
        );
        let gy = kb.global_view(
            "y",
            DType::F32,
            Layout::from_flat(&[32, 1], &[1, 1]),
            &[32, 1],
        );
        let rx = kb.register_tensor("rx", DType::F32, &[32, 64]);
        kb.copy(gx, rx);
        let ex = kb.elementwise(ElementwiseOp::Exp, &[rx]);
        let sum = kb.reduce(ex, 1, hexcute_ir::ReduceOp::Sum);
        kb.copy(sum, gy);
        let program = kb.build().unwrap();
        let arch = GpuArch::a100();
        let candidate = Synthesizer::new(&program, &arch, SynthesisOptions::default())
            .synthesize_preferred()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let x = random_vec(&mut rng, 32 * 64);
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), x.clone());
        let outputs = FunctionalSim::new(&program, &candidate)
            .run(&inputs)
            .unwrap();
        for row in 0..32 {
            let expect: f32 = (0..64).map(|c| x[row * 64 + c].exp()).sum();
            let got = outputs["y"][row];
            assert!(
                (got - expect).abs() / expect.abs() < 1e-4,
                "row {row}: {got} vs {expect}"
            );
        }
    }

    /// A dequant-only kernel: packed-INT4 weights staged through shared
    /// memory, unpack-loaded into registers, dequantized with grouped
    /// scales/zero points, and stored as FP16.
    fn dequant_kernel(
        n: usize,
        k: usize,
        group_size: usize,
        with_zero: bool,
    ) -> hexcute_ir::Program {
        let groups = k.div_ceil(group_size).max(1);
        let mut kb = KernelBuilder::new("dequant_check", 128);
        let gw = kb.global_view("w", DType::I4, Layout::row_major(&[n, k]), &[n, k]);
        let gscale = kb.global_view(
            "scale",
            DType::F16,
            Layout::row_major(&[n, groups]),
            &[n, groups],
        );
        let gy = kb.global_view("y", DType::F16, Layout::row_major(&[n, k]), &[n, k]);
        let sw = kb.shared_tensor("sw", DType::I4, &[n, k]);
        let rw_q = kb.register_tensor("rw_q", DType::I4, &[n, k]);
        let rscale = kb.register_tensor("rscale", DType::F16, &[n, groups]);
        kb.copy(gw, sw);
        kb.copy(sw, rw_q);
        kb.copy(gscale, rscale);
        let rzp = if with_zero {
            let gzp = kb.global_view(
                "zp",
                DType::F16,
                Layout::row_major(&[n, groups]),
                &[n, groups],
            );
            let rzp = kb.register_tensor("rzp", DType::F16, &[n, groups]);
            kb.copy(gzp, rzp);
            Some(rzp)
        } else {
            None
        };
        let dq = kb.dequant(rw_q, rscale, rzp, DType::F16, group_size);
        kb.copy(dq, gy);
        kb.build().unwrap()
    }

    /// The naive scalar reference for grouped dequantization: walks the
    /// logical tile element by element with no layouts, tables or packing.
    fn naive_dequant(
        w: &[f32],
        scale: &[f32],
        zp: Option<&[f32]>,
        n: usize,
        k: usize,
        group_size: usize,
    ) -> Vec<f32> {
        let groups = k.div_ceil(group_size).max(1);
        let mut out = vec![0.0f32; n * k];
        for r in 0..n {
            for c in 0..k {
                let g = (c / group_size).min(groups - 1);
                let z = zp.map(|z| z[r * groups + g]).unwrap_or(0.0);
                out[r * k + c] = quantize(DType::F16, (w[r * k + c] - z) * scale[r * groups + g]);
            }
        }
        out
    }

    fn check_dequant_against_reference(n: usize, k: usize, group_size: usize, with_zero: bool) {
        let program = dequant_kernel(n, k, group_size, with_zero);
        let arch = GpuArch::h100();
        let candidate = Synthesizer::new(&program, &arch, SynthesisOptions::default())
            .synthesize_preferred()
            .unwrap();
        let groups = k.div_ceil(group_size).max(1);
        let mut rng = StdRng::seed_from_u64(23 + group_size as u64);
        // Quantized int4 values and small float parameters.
        let w: Vec<f32> = (0..n * k)
            .map(|_| rng.gen_range(-8i32..=7) as f32)
            .collect();
        let scale: Vec<f32> = (0..n * groups).map(|_| rng.gen_range(0.01..0.2)).collect();
        let zp: Vec<f32> = (0..n * groups)
            .map(|_| rng.gen_range(-4i32..=4) as f32)
            .collect();
        let mut inputs = HashMap::new();
        inputs.insert("w".to_string(), w.clone());
        inputs.insert("scale".to_string(), scale.clone());
        if with_zero {
            inputs.insert("zp".to_string(), zp.clone());
        }
        let sim = FunctionalSim::new(&program, &candidate);
        let outputs = sim.run(&inputs).unwrap();
        let expect = naive_dequant(
            &w,
            &scale,
            with_zero.then_some(zp.as_slice()),
            n,
            k,
            group_size,
        );
        for r in 0..n {
            for c in 0..k {
                let got = outputs["y"][r * k + c];
                let want = expect[r * k + c];
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "dequant diverged at ({r}, {c}) for group size {group_size}: \
                     got {got}, want {want}"
                );
            }
        }
        // The fast (table-driven) and reference element paths agree bit for
        // bit on the dequant kernel too.
        let was_enabled = fastpath::enabled();
        fastpath::set_enabled(true);
        let fast = sim.run(&inputs).unwrap();
        fastpath::set_enabled(false);
        let reference = sim.run(&inputs).unwrap();
        fastpath::set_enabled(was_enabled);
        for (name, buf) in &fast {
            let fast_bits: Vec<u32> = buf.iter().map(|x| x.to_bits()).collect();
            let ref_bits: Vec<u32> = reference[name].iter().map(|x| x.to_bits()).collect();
            assert_eq!(fast_bits, ref_bits, "buffer {name} diverged across paths");
        }
    }

    #[test]
    fn int4_dequant_matches_naive_reference() {
        // Power-of-two group evenly dividing K.
        check_dequant_against_reference(32, 64, 32, true);
    }

    #[test]
    fn int4_dequant_handles_odd_group_sizes() {
        // Group size 24 over K = 64: two full groups plus a 16-element tail
        // served by the last scale column.
        check_dequant_against_reference(32, 64, 24, true);
        // Group size 3: many tiny groups, K = 48 divides evenly.
        check_dequant_against_reference(16, 48, 3, true);
    }

    #[test]
    fn int4_dequant_handles_tail_tiles_and_broadcast_scales() {
        // Group larger than K: a single broadcast scale column.
        check_dequant_against_reference(16, 48, 64, true);
        // Symmetric quantization: no zero point at all.
        check_dequant_against_reference(32, 64, 16, false);
    }

    #[test]
    fn int4_unpack_copy_round_trips_packed_values() {
        // The packed int4 values survive the global → shared → register
        // (unpack load) → register → global round trip exactly, matching the
        // scalar pack/unpack reference from hexcute-arch.
        let (n, k) = (32, 64);
        let mut kb = KernelBuilder::new("unpack_roundtrip", 128);
        let gw = kb.global_view("w", DType::I4, Layout::row_major(&[n, k]), &[n, k]);
        let gy = kb.global_view("y", DType::F32, Layout::row_major(&[n, k]), &[n, k]);
        let sw = kb.shared_tensor("sw", DType::I4, &[n, k]);
        let rw = kb.register_tensor("rw", DType::I4, &[n, k]);
        kb.copy(gw, sw);
        kb.copy(sw, rw);
        let rf = kb.cast(rw, DType::F32);
        kb.copy(rf, gy);
        let program = kb.build().unwrap();
        let arch = GpuArch::a100();
        let candidate = Synthesizer::new(&program, &arch, SynthesisOptions::default())
            .synthesize_preferred()
            .unwrap();

        // Round the values through the real bit-packing helpers: the byte
        // stream the modelled `ld.shared.*.unpack` instruction would see.
        let raw: Vec<i8> = (0..n * k).map(|i| ((i as i64 % 16) - 8) as i8).collect();
        let packed = hexcute_arch::pack_int4(&raw);
        let unpacked = hexcute_arch::unpack_int4(&packed, raw.len());
        assert_eq!(unpacked, raw, "pack/unpack reference must round trip");

        let w: Vec<f32> = unpacked.iter().map(|&v| v as f32).collect();
        let mut inputs = HashMap::new();
        inputs.insert("w".to_string(), w.clone());
        let outputs = FunctionalSim::new(&program, &candidate)
            .run(&inputs)
            .unwrap();
        assert_eq!(outputs["y"], w);
    }

    #[test]
    fn missing_input_defaults_to_zero_and_short_buffers_error() {
        let mut kb = KernelBuilder::new("copy", 32);
        let src = kb.global_view("src", DType::F32, Layout::row_major(&[16, 16]), &[16, 16]);
        let dst = kb.global_view("dst", DType::F32, Layout::row_major(&[16, 16]), &[16, 16]);
        let r = kb.register_tensor("r", DType::F32, &[16, 16]);
        kb.copy(src, r);
        kb.copy(r, dst);
        let program = kb.build().unwrap();
        let arch = GpuArch::a100();
        let candidate = Synthesizer::new(&program, &arch, SynthesisOptions::default())
            .synthesize_preferred()
            .unwrap();
        let sim = FunctionalSim::new(&program, &candidate);
        let outputs = sim.run(&HashMap::new()).unwrap();
        assert!(outputs["dst"].iter().all(|&x| x == 0.0));
        let mut short = HashMap::new();
        short.insert("src".to_string(), vec![1.0; 4]);
        assert!(matches!(sim.run(&short), Err(SimError::ShortBuffer { .. })));
    }
}
