//! The performance simulator: device-level latency estimation for a
//! synthesized kernel.
//!
//! Where the analytical cost model of `hexcute-costmodel` ranks candidate
//! programs at compile time, this module plays the role of the *measurement*
//! in the reproduction: it additionally models shared-memory bank conflicts,
//! occupancy and wave quantization across SMs, the DRAM and Tensor Core
//! rooflines of the whole device, and kernel-launch overhead.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::RwLock;

use hexcute_arch::{GpuArch, MemSpace};
use hexcute_costmodel::{op_choice_fingerprint, program_fingerprint, CostBreakdown, CostModel};
use hexcute_ir::{Op, OpId, OpKind, Program, TensorId};
use hexcute_layout::SwizzledLayout;
use hexcute_parallel::cache::{CacheStats, ShardedMap};
use hexcute_parallel::lossy::{self, LossyPurpose};
use hexcute_synthesis::{bank_conflict_degree, Candidate, CopyChoice};

/// The estimated execution profile of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// End-to-end latency of the launch in microseconds (including launch
    /// overhead).
    pub latency_us: f64,
    /// Cycles for one thread block, including bank-conflict penalties.
    pub block_cycles: f64,
    /// Latency component if the kernel were purely DRAM-bandwidth bound.
    pub dram_us: f64,
    /// Latency component if the kernel were purely Tensor-Core bound.
    pub compute_us: f64,
    /// Latency component from executing the blocks over the SMs.
    pub sm_us: f64,
    /// Number of waves of thread blocks across the device.
    pub waves: usize,
    /// Extra cycles per block charged to shared-memory bank conflicts.
    pub bank_conflict_cycles: f64,
    /// Kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
}

impl PerfReport {
    /// Achieved fraction of the DRAM-bandwidth roofline (1.0 = perfectly
    /// bandwidth bound).
    pub fn bandwidth_efficiency(&self) -> f64 {
        if self.latency_us <= 0.0 {
            return 0.0;
        }
        (self.dram_us / self.latency_us).min(1.0)
    }
}

/// Estimates the device-level latency of one launch of the program with the
/// given synthesized candidate.
///
/// This is the one-shot entry point: it re-derives the instruction timeline
/// with a fresh cost model and recomputes every bank-conflict penalty. When
/// scoring many sibling candidates, use a shared [`PerfEvaluator`] (and a
/// shared [`CostModel`]) instead — the results are bit-identical.
pub fn estimate_kernel(program: &Program, candidate: &Candidate, arch: &GpuArch) -> PerfReport {
    let cost = CostModel::new(arch).estimate(program, candidate);
    let bank_conflict_cycles = bank_conflict_penalty(program, candidate, arch);
    finish_report(program, candidate, arch, &cost, bank_conflict_cycles)
}

/// An incremental performance evaluator for scoring many candidates of one
/// program: per-operation bank-conflict penalties are memoized across
/// candidates, keyed by the operation's choice fingerprint plus the layout of
/// the shared buffer it touches — sibling candidates re-pay only the
/// operations their differing choice suffix changed. Safe to share across
/// threads (the cache is sharded over read-write locks, so the parallel
/// search rarely contends on it).
#[derive(Debug)]
pub struct PerfEvaluator<'a> {
    arch: &'a GpuArch,
    bank_cache: ShardedMap<(OpId, u64), f64>,
    /// Fingerprint of the program the cache currently describes: operation
    /// ids are only unique within one program, so evaluating a different
    /// program clears the cache (sequential cross-program reuse is safe;
    /// concurrent evaluation of *different* programs is not supported).
    program_tag: RwLock<Option<u64>>,
    /// Process-unique salt mixed into every lossy-tier key (the thread-local
    /// tables outlive this evaluator; see `hexcute_parallel::lossy`).
    salt: u64,
}

impl<'a> PerfEvaluator<'a> {
    /// Creates an evaluator for the architecture with empty caches.
    pub fn new(arch: &'a GpuArch) -> Self {
        PerfEvaluator {
            arch,
            bank_cache: ShardedMap::new(),
            program_tag: RwLock::new(None),
            salt: lossy::instance_salt(),
        }
    }

    /// Hit/miss/eviction counters of the per-operation bank-conflict cache.
    pub fn bank_cache_stats(&self) -> CacheStats {
        self.bank_cache.stats()
    }

    /// Clears the per-operation cache when `program` differs from the one it
    /// was built for, returning the program's fingerprint for lossy-key
    /// salting.
    fn retag(&self, program: &Program) -> u64 {
        let tag = program_fingerprint(program);
        if *self.program_tag.read().unwrap() == Some(tag) {
            return tag;
        }
        let mut current = self.program_tag.write().unwrap();
        if *current != Some(tag) {
            *current = Some(tag);
            self.bank_cache.clear();
        }
        tag
    }

    /// Derives the device-level performance report from an already-computed
    /// cost breakdown (avoiding the duplicate instruction-timeline estimate
    /// `estimate_kernel` performs). Bit-identical to [`estimate_kernel`] when
    /// `cost` came from [`CostModel::estimate`] on the same inputs.
    pub fn evaluate(
        &self,
        program: &Program,
        candidate: &Candidate,
        cost: &CostBreakdown,
    ) -> PerfReport {
        let tag = self.retag(program);
        let bank_conflict_cycles = self.bank_conflict_penalty(program, candidate, tag);
        finish_report(program, candidate, self.arch, cost, bank_conflict_cycles)
    }

    /// [`bank_conflict_penalty`] with per-operation memoization: a
    /// thread-local lossy table (salted with the program tag — `OpId`s are
    /// only unique per program) in front of the sharded cross-worker cache.
    fn bank_conflict_penalty(&self, program: &Program, candidate: &Candidate, tag: u64) -> f64 {
        let salt = lossy::mix(self.salt, tag);
        let mut penalty = 0.0f64;
        for op in program.ops() {
            let Some((choice, tensor, layout)) = bank_conflict_context(program, candidate, op)
            else {
                continue;
            };
            let fp = bank_fingerprint(candidate, op, choice, layout);
            // Per-op conflict charges are cheap pure computations that touch
            // no other cache: safe for the compute-under-lock single probe.
            penalty += lossy::two_tier_probe_or_insert_with(
                LossyPurpose::BankPenalty,
                salt,
                lossy::mix(op.id.index() as u64, fp),
                &self.bank_cache,
                (op.id, fp),
                || bank_conflict_penalty_op(program, op, choice, tensor, layout, self.arch),
            );
        }
        penalty
    }
}

/// Fingerprint of everything candidate-dependent the per-operation conflict
/// charge reads: the instruction choice plus the synthesized layout (base
/// modes and swizzle) of the shared buffer. The per-thread coverage is
/// plan-constant per operation, so the operation identity covers it.
fn bank_fingerprint(
    candidate: &Candidate,
    op: &Op,
    choice: &CopyChoice,
    layout: &SwizzledLayout,
) -> u64 {
    let mut hasher = DefaultHasher::new();
    op_choice_fingerprint(candidate, op).hash(&mut hasher);
    choice.vector_dim.hash(&mut hasher);
    layout.layout().hash(&mut hasher);
    let swizzle = layout.swizzle();
    swizzle.bits().hash(&mut hasher);
    swizzle.base().hash(&mut hasher);
    swizzle.shift().hash(&mut hasher);
    hasher.finish()
}

/// The copy choice, shared tensor and synthesized layout of an operation
/// that participates in the bank-conflict charge (`None` for every other
/// operation).
fn bank_conflict_context<'c>(
    program: &Program,
    candidate: &'c Candidate,
    op: &Op,
) -> Option<(&'c CopyChoice, TensorId, &'c SwizzledLayout)> {
    let OpKind::Copy { src, dst } = op.kind else {
        return None;
    };
    let choice = candidate.copy_choices.get(&op.id)?;
    if matches!(choice.atom.kind, hexcute_arch::CopyKind::LdMatrix { .. }) {
        // ldmatrix reads whole 16-byte rows; the swizzle selected during
        // shared-memory synthesis already spreads those rows across the
        // banks, and its per-thread *fragment* coverage is not the access
        // pattern, so it is excluded from the conflict charge.
        return None;
    }
    let tensor = if program.tensor(src).space == MemSpace::Shared {
        src
    } else if program.tensor(dst).space == MemSpace::Shared {
        dst
    } else {
        return None;
    };
    let layout = candidate.smem_layouts.get(&tensor)?;
    Some((choice, tensor, layout))
}

/// The conflict charge of one applicable copy operation.
fn bank_conflict_penalty_op(
    program: &Program,
    op: &Op,
    choice: &CopyChoice,
    tensor: TensorId,
    layout: &SwizzledLayout,
    arch: &GpuArch,
) -> f64 {
    let decl = program.tensor(tensor);
    let accesses: Vec<usize> = (0..32.min(choice.coverage.num_threads()))
        .map(|t| choice.coverage.map(t, 0))
        .collect();
    let degree = bank_conflict_degree(layout, &accesses, decl.dtype.bits(), arch);
    let reps = if op.in_main_loop {
        program.main_loop_trip_count
    } else {
        1
    };
    // Each degree of conflict serializes an extra shared-memory pass.
    degree as f64 * 2.0 * choice.invocations as f64 * reps as f64
}

/// Derives the device-level report from the per-block cost breakdown and the
/// bank-conflict charge (occupancy, rooflines, launch overhead).
fn finish_report(
    program: &Program,
    candidate: &Candidate,
    arch: &GpuArch,
    cost: &CostBreakdown,
    bank_conflict_cycles: f64,
) -> PerfReport {
    let block_cycles = cost.total_cycles + bank_conflict_cycles;
    let block_us = arch.cycles_to_ns(block_cycles) / 1000.0;

    // Occupancy: how many blocks fit on one SM concurrently.
    let max_threads_per_sm = 2048usize;
    let by_threads = (max_threads_per_sm / program.threads_per_block.max(1)).max(1);
    let smem_bytes = program.shared_memory_bytes().max(1);
    let by_smem = (arch.max_smem_per_block / smem_bytes).max(1);
    let blocks_per_sm = by_threads.min(by_smem).min(8);
    let concurrent = (arch.num_sms * blocks_per_sm).max(1);
    let waves = program.grid_blocks.div_ceil(concurrent).max(1);

    // Each SM works through its share of the grid; co-resident blocks hide
    // part of each other's latency, captured by the overlap factor.
    let overlap = if program.schedule.pipeline_stages > 1 || program.schedule.warp_specialized {
        0.85
    } else {
        1.0
    };
    let serial_blocks_per_sm = program.grid_blocks.div_ceil(arch.num_sms.max(1)).max(1);
    let sm_us = serial_blocks_per_sm as f64 * block_us * overlap;

    // Device rooflines. Narrow global accesses waste memory transactions:
    // the achievable bandwidth is scaled by the coalescing efficiency of the
    // selected copy instructions (a warp must touch a full 128-byte segment
    // to reach peak bandwidth). GEMM-like kernels re-read their operand
    // panels from every block along the other dimension; those repeats are
    // served by the L2, so their traffic is charged at L2 bandwidth instead
    // of DRAM bandwidth.
    let total_bytes = program.block_global_bytes() as f64 * program.grid_blocks as f64;
    let mem_eff = global_memory_efficiency(program, candidate);
    let effective_bandwidth = if program.has_gemm() {
        arch.l2_bandwidth_gbs.min(arch.dram_bandwidth_gbs * 2.5)
    } else {
        arch.dram_bandwidth_gbs
    };
    let dram_us = total_bytes / (effective_bandwidth * mem_eff) * 1e-3;
    let total_flops = program.block_flops() as f64 * program.grid_blocks as f64;
    let multiply_dtype = program
        .ops()
        .iter()
        .find_map(|op| match op.kind {
            OpKind::Gemm { a, .. } => Some(program.tensor(a).dtype),
            _ => None,
        })
        .unwrap_or(hexcute_arch::DType::F16);
    let compute_us = if total_flops > 0.0 {
        arch.roofline_latency_us(0.0, total_flops, multiply_dtype)
    } else {
        0.0
    };

    let launch_overhead_us = arch.kernel_launch_overhead_us;
    let latency_us = launch_overhead_us + dram_us.max(compute_us).max(sm_us);

    PerfReport {
        latency_us,
        block_cycles,
        dram_us,
        compute_us,
        sm_us,
        waves,
        bank_conflict_cycles,
        launch_overhead_us,
    }
}

/// Estimates the total latency of a sequence of dependent kernel launches
/// (e.g. the per-layer kernels of an end-to-end decode step).
pub fn estimate_sequence(launches: &[(&Program, &Candidate)], arch: &GpuArch) -> f64 {
    launches
        .iter()
        .map(|(p, c)| estimate_kernel(p, c, arch).latency_us)
        .sum()
}

/// The fraction of peak DRAM bandwidth achievable with the candidate's
/// global-memory copy instructions, weighted by the bytes each copy moves.
/// A warp that touches a full 128-byte segment per transaction reaches 1.0;
/// narrow (scalar) accesses waste bandwidth proportionally, with a floor of
/// 25% (the L2 still serves 32-byte sectors).
pub fn global_memory_efficiency(program: &Program, candidate: &Candidate) -> f64 {
    let mut weighted = 0.0f64;
    let mut total = 0.0f64;
    for op in program.ops() {
        let OpKind::Copy { src, dst } = op.kind else {
            continue;
        };
        let (s, d) = (program.tensor(src), program.tensor(dst));
        let global = if s.space == MemSpace::Global {
            Some(s)
        } else if d.space == MemSpace::Global {
            Some(d)
        } else {
            None
        };
        let Some(global_decl) = global else { continue };
        let Some(choice) = candidate.copy_choices.get(&op.id) else {
            continue;
        };
        let reps = if op.in_main_loop {
            program.main_loop_trip_count
        } else {
            1
        };
        let bytes = global_decl
            .dtype
            .bytes_for(s.tile_elements_2d().min(d.tile_elements_2d())) as f64
            * reps as f64;
        let warp_bytes = (choice
            .atom
            .bytes_per_thread
            .min(global_decl.dtype.bytes_for(choice.elements_per_thread))
            * choice.atom.threads.min(32)) as f64;
        let efficiency = (warp_bytes / 128.0).clamp(0.25, 1.0);
        weighted += bytes * efficiency;
        total += bytes;
    }
    if total <= 0.0 {
        1.0
    } else {
        weighted / total
    }
}

/// Extra per-block cycles caused by shared-memory bank conflicts under the
/// candidate's shared-memory layouts and access patterns. The uncached
/// reference; [`PerfEvaluator`] memoizes the same per-operation charges
/// across sibling candidates.
pub fn bank_conflict_penalty(program: &Program, candidate: &Candidate, arch: &GpuArch) -> f64 {
    let mut penalty = 0.0f64;
    for op in program.ops() {
        let Some((choice, tensor, layout)) = bank_conflict_context(program, candidate, op) else {
            continue;
        };
        penalty += bank_conflict_penalty_op(program, op, choice, tensor, layout, arch);
    }
    penalty
}

#[cfg(test)]
mod tests {
    use super::*;
    use hexcute_arch::DType;
    use hexcute_ir::KernelBuilder;
    use hexcute_layout::Layout;
    use hexcute_synthesis::{SynthesisOptions, Synthesizer};

    fn gemm_program(blocks: usize, stages: usize) -> Program {
        let (bm, bn, bk, k) = (128, 128, 32, 2048);
        let mut kb = KernelBuilder::new("perf_gemm", 128);
        kb.set_grid_blocks(blocks).set_pipeline_stages(stages);
        let ga = kb.global_view(
            "a",
            DType::F16,
            Layout::from_flat(&[bm, bk, k / bk], &[k, 1, bk]),
            &[bm, bk, k / bk],
        );
        let gb = kb.global_view(
            "b",
            DType::F16,
            Layout::from_flat(&[bn, bk, k / bk], &[k, 1, bk]),
            &[bn, bk, k / bk],
        );
        let gc = kb.global_view("c", DType::F16, Layout::row_major(&[bm, bn]), &[bm, bn]);
        let sa = kb.shared_tensor("sa", DType::F16, &[bm, bk]);
        let sb = kb.shared_tensor("sb", DType::F16, &[bn, bk]);
        let ra = kb.register_tensor("ra", DType::F16, &[bm, bk]);
        let rb = kb.register_tensor("rb", DType::F16, &[bn, bk]);
        let rc = kb.register_tensor("rc", DType::F32, &[bm, bn]);
        kb.fill(rc, 0.0);
        kb.begin_loop(k / bk);
        kb.copy(ga, sa);
        kb.copy(gb, sb);
        kb.copy(sa, ra);
        kb.copy(sb, rb);
        kb.gemm(rc, ra, rb);
        kb.end_loop();
        let rc16 = kb.cast(rc, DType::F16);
        kb.copy(rc16, gc);
        kb.build().unwrap()
    }

    fn candidate_for(program: &Program, arch: &GpuArch, options: SynthesisOptions) -> Candidate {
        Synthesizer::new(program, arch, options)
            .synthesize_preferred()
            .unwrap()
    }

    #[test]
    fn latency_scales_with_grid_size() {
        let arch = GpuArch::a100();
        let small = gemm_program(8, 2);
        let large = gemm_program(512, 2);
        let small_report = estimate_kernel(
            &small,
            &candidate_for(&small, &arch, SynthesisOptions::default()),
            &arch,
        );
        let large_report = estimate_kernel(
            &large,
            &candidate_for(&large, &arch, SynthesisOptions::default()),
            &arch,
        );
        assert!(large_report.latency_us > small_report.latency_us);
        assert!(large_report.waves >= small_report.waves);
    }

    #[test]
    fn scalar_copies_hurt_device_latency() {
        let arch = GpuArch::a100();
        let program = gemm_program(216, 2);
        let good = estimate_kernel(
            &program,
            &candidate_for(&program, &arch, SynthesisOptions::default()),
            &arch,
        );
        let bad = estimate_kernel(
            &program,
            &candidate_for(&program, &arch, SynthesisOptions::scalar_fallback()),
            &arch,
        );
        // The per-block instruction timeline always gets worse; the
        // device-level latency can only stay equal when the kernel is purely
        // Tensor-Core bound.
        assert!(bad.latency_us >= good.latency_us);
        assert!(bad.block_cycles > good.block_cycles * 1.2);
    }

    #[test]
    fn triton_style_smem_layout_adds_bank_conflicts() {
        let arch = GpuArch::a100();
        let program = gemm_program(216, 2);
        let synthesized = candidate_for(&program, &arch, SynthesisOptions::default());
        let row_major = candidate_for(&program, &arch, SynthesisOptions::triton_smem_layout());
        let good = bank_conflict_penalty(&program, &synthesized, &arch);
        let bad = bank_conflict_penalty(&program, &row_major, &arch);
        assert!(
            bad >= good,
            "row-major shared memory should not have fewer conflicts ({bad} vs {good})"
        );
        let good_report = estimate_kernel(&program, &synthesized, &arch);
        let bad_report = estimate_kernel(&program, &row_major, &arch);
        assert!(bad_report.block_cycles >= good_report.block_cycles);
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let arch = GpuArch::h100();
        let mut kb = KernelBuilder::new("tiny", 128);
        kb.set_grid_blocks(1);
        let src = kb.global_view("src", DType::F16, Layout::row_major(&[64, 64]), &[64, 64]);
        let dst = kb.global_view("dst", DType::F16, Layout::row_major(&[64, 64]), &[64, 64]);
        let r = kb.register_tensor("r", DType::F16, &[64, 64]);
        kb.copy(src, r);
        kb.copy(r, dst);
        let program = kb.build().unwrap();
        let candidate = candidate_for(&program, &arch, SynthesisOptions::default());
        let report = estimate_kernel(&program, &candidate, &arch);
        assert!(report.launch_overhead_us / report.latency_us > 0.5);
    }

    #[test]
    fn shared_evaluator_matches_estimate_kernel_across_siblings() {
        let arch = GpuArch::a100();
        let program = gemm_program(216, 2);
        let candidates = Synthesizer::new(&program, &arch, SynthesisOptions::default())
            .synthesize()
            .unwrap();
        assert!(candidates.len() > 1);
        let model = CostModel::new(&arch);
        let evaluator = PerfEvaluator::new(&arch);
        for candidate in &candidates {
            let reference = estimate_kernel(&program, candidate, &arch);
            let cost = model.estimate(&program, candidate);
            let incremental = evaluator.evaluate(&program, candidate, &cost);
            // Bit-identical, not approximately equal: the cached per-op
            // penalties and the shared cost model must not perturb anything.
            assert_eq!(
                reference.latency_us.to_bits(),
                incremental.latency_us.to_bits()
            );
            assert_eq!(reference, incremental);
        }
    }

    #[test]
    fn report_exposes_roofline_components() {
        let arch = GpuArch::h100();
        let program = gemm_program(1024, 3);
        let candidate = candidate_for(&program, &arch, SynthesisOptions::default());
        let report = estimate_kernel(&program, &candidate, &arch);
        assert!(report.dram_us > 0.0);
        assert!(report.compute_us > 0.0);
        assert!(report.latency_us >= report.dram_us.max(report.compute_us));
        assert!(report.bandwidth_efficiency() <= 1.0);
    }
}
